(** Configurable cost models over {!Metrics} counters.

    The paper's 1999 timings were dominated by disk behaviour: a
    sequential scan amortizes one page read over many tuples, while
    Olken-Sample's random tuple fetches and index probes each risk a
    page fault. On this library's in-memory substrate those costs
    collapse, which flips some orderings (see EXPERIMENTS.md). A cost
    model re-weights the hardware-independent counters so both eras can
    be read off the same run:

    cost = seq_pages·[sequential_page_cost]
         + (random_accesses + index_probes)·[random_page_cost]
         + cpu_tuples·[cpu_tuple_cost]

    where seq_pages = ceil(tuples_scanned / page_size_tuples) and
    cpu_tuples = join outputs + hash builds + sorts + rejections +
    statistics lookups. The [default_disk] constants follow the
    conventional 4:1 random-to-sequential page ratio. *)

type t = {
  page_size_tuples : int;  (** Tuples per page (> 0). *)
  sequential_page_cost : float;
  random_page_cost : float;
  cpu_tuple_cost : float;
}

val default_disk : t
(** 100 tuples/page, sequential 1.0, random 4.0, cpu 0.01 — magnetic-
    disk-era relative costs (the paper's setting). *)

val in_memory : t
(** Every touched tuple costs 1, pages are irrelevant: equals
    {!Metrics.total_work} up to the page rounding of scans. *)

val cost : t -> Metrics.t -> float
(** Scalar cost of a run under the model. *)

val relative_pct : t -> baseline:Metrics.t -> Metrics.t -> float
(** [relative_pct model ~baseline m] = 100 · cost(m) / cost(baseline). *)

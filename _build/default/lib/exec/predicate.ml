open Rsj_relation

type t =
  | True
  | Eq of int * Value.t
  | Ne of int * Value.t
  | Lt of int * Value.t
  | Le of int * Value.t
  | Gt of int * Value.t
  | Ge of int * Value.t
  | Between of int * Value.t * Value.t
  | Is_null of int
  | Not_null of int
  | And of t * t
  | Or of t * t
  | Not of t
  | Custom of string * (Tuple.t -> bool)

let cmp_not_null op col v row =
  let x = Tuple.get row col in
  (not (Value.is_null x)) && op (Value.compare x v) 0

let rec eval p row =
  match p with
  | True -> true
  | Eq (c, v) -> cmp_not_null ( = ) c v row
  | Ne (c, v) -> cmp_not_null ( <> ) c v row
  | Lt (c, v) -> cmp_not_null ( < ) c v row
  | Le (c, v) -> cmp_not_null ( <= ) c v row
  | Gt (c, v) -> cmp_not_null ( > ) c v row
  | Ge (c, v) -> cmp_not_null ( >= ) c v row
  | Between (c, lo, hi) ->
      let x = Tuple.get row c in
      (not (Value.is_null x)) && Value.compare x lo >= 0 && Value.compare x hi <= 0
  | Is_null c -> Value.is_null (Tuple.get row c)
  | Not_null c -> not (Value.is_null (Tuple.get row c))
  | And (a, b) -> eval a row && eval b row
  | Or (a, b) -> eval a row || eval b row
  | Not a -> not (eval a row)
  | Custom (_, f) -> f row

let rec to_string = function
  | True -> "true"
  | Eq (c, v) -> Printf.sprintf "#%d = %s" c (Value.to_string v)
  | Ne (c, v) -> Printf.sprintf "#%d <> %s" c (Value.to_string v)
  | Lt (c, v) -> Printf.sprintf "#%d < %s" c (Value.to_string v)
  | Le (c, v) -> Printf.sprintf "#%d <= %s" c (Value.to_string v)
  | Gt (c, v) -> Printf.sprintf "#%d > %s" c (Value.to_string v)
  | Ge (c, v) -> Printf.sprintf "#%d >= %s" c (Value.to_string v)
  | Between (c, lo, hi) ->
      Printf.sprintf "#%d between %s and %s" c (Value.to_string lo) (Value.to_string hi)
  | Is_null c -> Printf.sprintf "#%d is null" c
  | Not_null c -> Printf.sprintf "#%d is not null" c
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "(not %s)" (to_string a)
  | Custom (name, _) -> name

(** Hash aggregation (GROUP BY) for query plans.

    The paper's motivating OLAP queries aggregate over joins; this
    operator provides the exact evaluation those approximate answers
    are judged against. Blocking: consumes its input, then emits one
    row per group. *)

open Rsj_relation

type func =
  | Count  (** COUNT of rows in the group (NULLs included). *)
  | Count_col of int  (** COUNT of non-NULL values in a column. *)
  | Sum of int  (** Σ of a numeric column; NULLs contribute nothing. *)
  | Avg of int  (** Mean of the non-NULL values; NULL on empty. *)
  | Min of int
  | Max of int  (** Extremes by {!Value.compare}; NULL on all-NULL. *)

type t = {
  group_by : int list;  (** Grouping columns (may be empty: one global group). *)
  aggregates : (string * func) list;  (** Output-column name and function. *)
}

val output_schema : input:Schema.t -> t -> Schema.t
(** Grouping columns (with their input names/types) followed by one
    column per aggregate. Numeric aggregate columns are typed [T_float]
    except [Count]/[Count_col] ([T_int]) and [Min]/[Max] (input type).
    Raises [Invalid_argument] on out-of-range columns. *)

val apply : t -> input:Schema.t -> Tuple.t Stream0.t -> Tuple.t Stream0.t
(** Evaluate; group order is unspecified. Raises [Invalid_argument] if
    a [Sum]/[Avg] column holds a non-numeric value. *)

val plan : t -> Plan.t -> Plan.t
(** Wrap as a [Plan.Transform] node. *)

lib/exec/plan.mli: Format Metrics Predicate Relation Rsj_index Rsj_relation Schema Stream0 Tuple

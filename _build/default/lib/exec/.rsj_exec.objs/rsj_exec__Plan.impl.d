lib/exec/plan.ml: Array Format Hashtbl List Metrics Predicate Relation Rsj_index Rsj_relation Schema Stream0 String Tuple Value

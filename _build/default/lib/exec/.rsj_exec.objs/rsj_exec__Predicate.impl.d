lib/exec/predicate.ml: Printf Rsj_relation Tuple Value

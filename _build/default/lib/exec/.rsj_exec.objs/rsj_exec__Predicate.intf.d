lib/exec/predicate.mli: Rsj_relation Tuple Value

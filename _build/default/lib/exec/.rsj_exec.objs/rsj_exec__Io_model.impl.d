lib/exec/io_model.ml: Metrics

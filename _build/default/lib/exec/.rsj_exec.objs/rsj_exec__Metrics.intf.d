lib/exec/metrics.mli: Format

lib/exec/aggregate.ml: Array Hashtbl List Option Plan Printf Rsj_relation Schema Stream0 String Tuple Value

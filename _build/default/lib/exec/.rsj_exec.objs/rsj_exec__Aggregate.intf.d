lib/exec/aggregate.mli: Plan Rsj_relation Schema Stream0 Tuple

lib/exec/metrics.ml: Format List

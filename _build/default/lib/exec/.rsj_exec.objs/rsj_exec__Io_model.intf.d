lib/exec/io_model.mli: Metrics

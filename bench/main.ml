(* Benchmark harness.

   Two layers:
   1. The paper harness: for every table and figure of the paper's §8
      (Table 1, Figures A-F) plus the analytic validations, print the
      same rows/series the paper reports (running time as % of
      Naive-Sample, and the scale-independent work model). This is the
      default output.
   2. Bechamel micro-benchmarks — one Test.make per paper artifact —
      timing the kernel of the strategy/black box each figure exercises,
      plus ablations (binomial sampler variants, reservoir vs known-n
      black boxes, hash vs btree probes, CF skipping).

   Environment knobs: RSJ_N1, RSJ_N2, RSJ_DOMAIN, RSJ_SCALE, RSJ_SEED,
   RSJ_REPS (paper harness); RSJ_BENCH_QUOTA (seconds per bechamel
   test, default 0.5); RSJ_PAR_N1 (outer-relation size of the
   parallel/* benches, default 1,000,000); RSJ_CHUNK_SIZE (scheduler
   chunk size override, see Rsj_parallel); RSJ_SKIP_MICRO=1 to skip
   layer 2; RSJ_SKIP_PAPER=1 to skip layer 1; RSJ_ONLY_PARALLEL=1 to
   run only the parallel/* benches (what `make bench-parallel` sets).

   `--json` (what `make bench-json` passes) skips both layers and
   instead writes BENCH_parallel.json: strategy × domain-count median
   wall-times over the pooled runtime plus the domain-pool spawn
   counters, at a CI-friendly scale (RSJ_PAR_N1 default 100,000). *)

open Bechamel
open Toolkit
module Strategy = Rsj_core.Strategy
module Black_box = Rsj_core.Black_box
module Zipf_tables = Rsj_workload.Zipf_tables
module Stream0 = Rsj_relation.Stream0

(* A small standing workload shared by the micro benches. *)
let micro_env ~z1 ~z2 =
  let pair = Zipf_tables.make_pair ~seed:42 ~n1:2_000 ~n2:8_000 ~z1 ~z2 ~domain:400 () in
  Strategy.make_env ~seed:42 ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
    ~right_key:Zipf_tables.col2 ()

let strategy_kernel env strategy ~r () = ignore (Strategy.run env strategy ~r)

let micro_tests () =
  let env_uniform = micro_env ~z1:0. ~z2:0. in
  let env_skewed = micro_env ~z1:2. ~z2:3. in
  (* Force auxiliary structures outside the timed region. *)
  ignore (Strategy.env_right_index env_uniform);
  ignore (Strategy.env_right_index env_skewed);
  ignore (Strategy.env_histogram env_uniform);
  ignore (Strategy.env_histogram env_skewed);
  let r_uniform = max 1 (Strategy.env_join_size env_uniform / 100) in
  let r_skewed = max 1 (Strategy.env_join_size env_skewed / 1000) in
  let rng = Rsj_util.Prng.create ~seed:7 () in
  let stream_of_ints n = Stream0.of_array (Array.init n Fun.id) in
  let fps_threshold_test =
    let pair = Zipf_tables.make_pair ~seed:42 ~n1:2_000 ~n2:8_000 ~z1:2. ~z2:3. ~domain:400 () in
    let env =
      Strategy.make_env ~seed:42 ~histogram_fraction:0.02 ~left:pair.outer ~right:pair.inner
        ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()
    in
    ignore (Strategy.env_histogram env);
    Test.make ~name:"figF/fps-threshold-2pct"
      (Staged.stage (strategy_kernel env Strategy.Frequency_partition ~r:r_skewed))
  in
  let hash_probe_test =
    let idx = Strategy.env_right_index env_skewed in
    Test.make ~name:"ablation/hash-index-probe"
      (Staged.stage (fun () ->
           ignore
             (Rsj_index.Hash_index.multiplicity idx
                (Rsj_relation.Value.Int (1 + Rsj_util.Prng.int rng 400)))))
  in
  let btree_probe_test =
    let bt = Rsj_index.Btree.build (Strategy.env_right env_skewed) ~key:Zipf_tables.col2 in
    Test.make ~name:"ablation/btree-probe"
      (Staged.stage (fun () ->
           ignore
             (Rsj_index.Btree.multiplicity bt
                (Rsj_relation.Value.Int (1 + Rsj_util.Prng.int rng 400)))))
  in
  [
    (* Table 1 is about requirements, not speed; its micro bench times
       the cheapest strategy satisfying the Case B row at z=(0,0). *)
    Test.make ~name:"table1/stream-sample"
      (Staged.stage (strategy_kernel env_uniform Strategy.Stream ~r:r_uniform));
    Test.make ~name:"figA/naive-z00"
      (Staged.stage (strategy_kernel env_uniform Strategy.Naive ~r:r_uniform));
    Test.make ~name:"figA/stream-z00"
      (Staged.stage (strategy_kernel env_uniform Strategy.Stream ~r:r_uniform));
    Test.make ~name:"figB/naive-z23"
      (Staged.stage (strategy_kernel env_skewed Strategy.Naive ~r:r_skewed));
    Test.make ~name:"figB/fps-z23"
      (Staged.stage (strategy_kernel env_skewed Strategy.Frequency_partition ~r:r_skewed));
    Test.make ~name:"figC/olken-z23"
      (Staged.stage (strategy_kernel env_skewed Strategy.Olken ~r:r_skewed));
    Test.make ~name:"figD/stream-z23"
      (Staged.stage (strategy_kernel env_skewed Strategy.Stream ~r:r_skewed));
    Test.make ~name:"figE/fps-noindex-z23"
      (Staged.stage (strategy_kernel env_skewed Strategy.Hybrid_count ~r:r_skewed));
    fps_threshold_test;
    (* Ablations *)
    Test.make ~name:"ablation/u1-known-n"
      (Staged.stage (fun () ->
           ignore (Stream0.to_array (Black_box.u1 rng ~n:10_000 ~r:100 (stream_of_ints 10_000)))));
    Test.make ~name:"ablation/u2-reservoir"
      (Staged.stage (fun () -> ignore (Black_box.u2 rng ~r:100 (stream_of_ints 10_000))));
    Test.make ~name:"ablation/cf-per-tuple"
      (Staged.stage (fun () ->
           ignore (Stream0.length (Black_box.coin_flip rng ~f:0.01 (stream_of_ints 10_000)))));
    Test.make ~name:"ablation/cf-skip"
      (Staged.stage (fun () ->
           ignore (Stream0.length (Black_box.coin_flip_skip rng ~f:0.01 (stream_of_ints 10_000)))));
    Test.make ~name:"ablation/binomial-small-mean"
      (Staged.stage (fun () -> ignore (Rsj_util.Dist.binomial rng ~n:1000 ~p:0.001)));
    Test.make ~name:"ablation/binomial-large-mean"
      (Staged.stage (fun () -> ignore (Rsj_util.Dist.binomial rng ~n:100_000 ~p:0.4)));
    hash_probe_test;
    btree_probe_test;
    (let paged =
       Rsj_relation.Paged.create ~tuples_per_page:100 (Strategy.env_right env_skewed)
     in
     Test.make ~name:"ablation/paged-scan-sample"
       (Staged.stage (fun () -> ignore (Rsj_core.Block_sample.scan_sample rng ~r:50 paged))));
    (let paged =
       Rsj_relation.Paged.create ~tuples_per_page:100 (Strategy.env_right env_skewed)
     in
     Test.make ~name:"ablation/paged-block-sample"
       (Staged.stage (fun () -> ignore (Rsj_core.Block_sample.u1_paged rng ~r:50 paged))));
  ]

(* Parallel-runtime benches. The workload is the acceptance-size Zipf
   pair (n1 from RSJ_PAR_N1, default 1,000,000); speedup at domains > 1
   only materialises when the machine actually has spare cores. *)
let parallel_tests () =
  let n1 =
    match Sys.getenv_opt "RSJ_PAR_N1" with
    | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> 1_000_000)
    | None -> 1_000_000
  in
  let make_env ?histogram_fraction ~z1 ~z2 () =
    let pair =
      Zipf_tables.make_pair ~seed:42 ~n1 ~n2:(max 1 (n1 / 4)) ~z1 ~z2 ~domain:1_000 ()
    in
    let env =
      Strategy.make_env ~seed:42 ?histogram_fraction ~left:pair.outer ~right:pair.inner
        ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()
    in
    ignore (Strategy.env_right_index env);
    ignore (Strategy.env_right_stats env);
    ignore (Strategy.env_histogram env);
    (pair, env)
  in
  let pair, env = make_env ~z1:0. ~z2:0. () in
  (* The partition strategies (and Olken's acceptance rate) are built
     for skew — at z = (0,0) almost every join value is low-frequency,
     so FPS/Index/Hybrid degenerate to scanning nearly the whole join.
     Bench them at z = (2,3), the same cell the figB/figE micro benches
     use, with a 0.5% statistics threshold (the paper's figF sweeps
     this knob): at this scale the default 5% keeps only two values,
     leaving a multi-million-tuple lo-side join; at 0.5% the histogram
     captures the heavy values and the lo side is the designed light
     tail. *)
  let _, env_skew = make_env ~histogram_fraction:0.005 ~z1:2. ~z2:3. () in
  let r = max 1 (n1 / 100) in
  let strategy_bench tag strategy d =
    let e, ztag = if tag = "stream" then (env, "z00") else (env_skew, "z23") in
    Test.make
      ~name:(Printf.sprintf "parallel/%s-%s-d%d" tag ztag d)
      (Staged.stage (fun () -> ignore (Rsj_parallel.run e strategy ~r ~domains:d)))
  in
  let index_bench d =
    Test.make
      ~name:(Printf.sprintf "parallel/index-build-d%d" d)
      (Staged.stage (fun () ->
           ignore (Rsj_index.Hash_index.build_parallel pair.inner ~key:Zipf_tables.col2 ~domains:d)))
  in
  (* Skew-rebalance comparison: R2 is Zipf z=2 and R1 is sorted so its
     heavy join keys (largest m2) cluster in the leading chunks — the
     per-tuple cost of Naive's scan is proportional to m2(v), so a
     static one-shard-per-domain split strands nearly all the join
     output on domain 0 while the chunk queue lets finished domains
     claim the remaining heavy chunks. Static sharding is reproduced by
     pinning [chunk_size] to ceil(n/domains). *)
  let skew_tests =
    let sn1 = max 1 (n1 / 10) in
    let spair =
      Zipf_tables.make_pair ~seed:43 ~n1:sn1 ~n2:(max 1 (sn1 / 2)) ~z1:0. ~z2:2. ~domain:1_000 ()
    in
    let m2 = Hashtbl.create 1_024 in
    Rsj_relation.Relation.iter spair.inner (fun t ->
        let v = Rsj_relation.Tuple.attr t Zipf_tables.col2 in
        let n = try Hashtbl.find m2 v with Not_found -> 0 in
        Hashtbl.replace m2 v (n + 1));
    let weight t =
      let v = Rsj_relation.Tuple.attr t Zipf_tables.col2 in
      try Hashtbl.find m2 v with Not_found -> 0
    in
    let rows = Rsj_relation.Relation.to_array spair.outer in
    Array.sort (fun a b -> compare (weight b) (weight a)) rows;
    let sorted =
      Rsj_relation.Relation.of_tuples ~name:"outer-heavy-first"
        (Rsj_relation.Relation.schema spair.outer)
        (Array.to_list rows)
    in
    let senv =
      Strategy.make_env ~seed:42 ~left:sorted ~right:spair.inner ~left_key:Zipf_tables.col2
        ~right_key:Zipf_tables.col2 ()
    in
    let sr = max 1 (sn1 / 100) in
    let domains = 4 in
    let static_chunk = (sn1 + domains - 1) / domains in
    [
      Test.make ~name:"parallel/skew-naive-static-d4"
        (Staged.stage (fun () ->
             ignore
               (Rsj_parallel.run ~chunk_size:static_chunk senv Strategy.Naive ~r:sr ~domains)));
      Test.make ~name:"parallel/skew-naive-chunkq-d4"
        (Staged.stage (fun () -> ignore (Rsj_parallel.run senv Strategy.Naive ~r:sr ~domains)));
    ]
  in
  List.concat
    [
      List.concat_map
        (fun (tag, strategy) -> List.map (strategy_bench tag strategy) [ 1; 2; 4 ])
        [
          ("stream", Strategy.Stream);
          ("olken", Strategy.Olken);
          ("fps", Strategy.Frequency_partition);
          ("index", Strategy.Index_sample);
          ("hybrid", Strategy.Hybrid_count);
        ];
      [ index_bench 1; index_bench 4 ];
      skew_tests;
    ]

(* --json: machine-readable strategy × domains wall-times, written to
   BENCH_parallel.json so the perf trajectory is tracked across PRs.
   Scaled for CI (RSJ_PAR_N1 default 100,000 here, vs 1,000,000 for the
   interactive parallel/* benches); RSJ_REPS medians out scheduler
   noise. The pool counters land in the same file — the spawn economy
   is the headline number on a single-core container where wall-clock
   speedups cannot materialise. *)
let run_json () =
  let getenv_int name default =
    match Sys.getenv_opt name with
    | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
    | None -> default
  in
  let n1 = getenv_int "RSJ_PAR_N1" 100_000 in
  let n2 = max 1 (n1 / 4) in
  let reps = getenv_int "RSJ_REPS" 3 in
  let make_env ?histogram_fraction ~z1 ~z2 () =
    let pair = Zipf_tables.make_pair ~seed:42 ~n1 ~n2 ~z1 ~z2 ~domain:1_000 () in
    let env =
      Strategy.make_env ~seed:42 ?histogram_fraction ~left:pair.outer ~right:pair.inner
        ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()
    in
    ignore (Strategy.env_right_index env);
    ignore (Strategy.env_right_stats env);
    ignore (Strategy.env_histogram env);
    env
  in
  let env_uniform = make_env ~z1:0. ~z2:0. () in
  let env_skew = make_env ~histogram_fraction:0.005 ~z1:2. ~z2:3. () in
  let r = max 1 (n1 / 100) in
  (* Same cell assignment as the parallel/* bechamel benches: the
     partition strategies (and Olken's acceptance loop) are built for
     skew; the scan strategies run the uniform cell. *)
  let cell_of = function
    | Strategy.Olken | Strategy.Frequency_partition | Strategy.Index_sample
    | Strategy.Hybrid_count ->
        (env_skew, "z23")
    | Strategy.Naive | Strategy.Stream | Strategy.Group | Strategy.Count_sample ->
        (env_uniform, "z00")
  in
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let time_wr env strategy d =
    median
      (Array.init reps (fun _ ->
           (Rsj_parallel.run env strategy ~r ~domains:d).Strategy.elapsed_seconds))
  in
  let time_wor env strategy d =
    median
      (Array.init reps (fun _ ->
           (Rsj_parallel.run_wor env strategy ~r ~domains:d).Strategy.elapsed_seconds))
  in
  let domain_counts = [ 1; 2; 4 ] in
  (* Untraced pass first: these medians are the perf-trajectory numbers
     (telemetry off is the default, so the only instrumentation cost
     here is one branch per hook). *)
  let timings =
    List.map
      (fun strategy ->
        let env, ztag = cell_of strategy in
        ( strategy,
          ztag,
          List.map
            (fun d ->
              let wr = time_wr env strategy d in
              (* WoR over the full eight-strategy × width grid at bench
                 scale would dominate the run; one WoR series (Stream,
                 the batch-conversion path) plus Naive (the direct
                 chunked Vitter path) tracks both pooled WoR
                 mechanisms. *)
              let wor =
                match strategy with
                | Strategy.Naive | Strategy.Stream -> Some (time_wor env strategy d)
                | _ -> None
              in
              (d, wr, wor))
            domain_counts ))
      Strategy.all
  in
  let rows =
    List.concat_map
      (fun (strategy, ztag, per_d) ->
        List.concat_map
          (fun (d, wr, wor) ->
            let row semantics seconds =
              Printf.sprintf
                {|    {"strategy": %S, "skew": %S, "semantics": %S, "domains": %d, "seconds": %.6f}|}
                (Strategy.name strategy) ztag semantics d seconds
            in
            row "WR" wr :: (match wor with Some s -> [ row "WoR" s ] | None -> []))
          per_d)
      timings
  in
  (* Dataplane pass: boxed vs int planes head-to-head on the very same
     prebuilt envs — Column.set_mode only changes which plane dispatch
     consults, and the fixed seed makes the two sides draw identical
     samples, so the delta is pure data-plane cost. d = 1 isolates the
     inner loop from scheduler effects. *)
  let module Column = Rsj_relation.Column in
  let time_plane mode f =
    let prev = Column.mode () in
    Column.set_mode mode;
    Fun.protect ~finally:(fun () -> Column.set_mode prev) f
  in
  let dataplane_rows =
    List.concat_map
      (fun strategy ->
        let env, ztag = cell_of strategy in
        let series semantics timer =
          let boxed = time_plane Column.Boxed (fun () -> timer env strategy 1) in
          let int_s = time_plane Column.Int_keys (fun () -> timer env strategy 1) in
          Printf.sprintf
            {|      {"strategy": %S, "skew": %S, "semantics": %S, "domains": 1, "boxed_median_s": %.6f, "int_median_s": %.6f, "speedup": %s}|}
            (Strategy.name strategy) ztag semantics boxed int_s
            (if int_s > 0. then Printf.sprintf "%.3f" (boxed /. int_s) else "null")
        in
        series "WR" time_wr
        :: (match strategy with
           | Strategy.Naive | Strategy.Stream -> [ series "WoR" time_wor ]
           | _ -> []))
      Strategy.all
  in
  (* Allocation economics of the S1 inner loop (the loop every scan
     strategy shares): minor words per fed tuple, boxed reservoir vs
     the Wr_int kernel over the flat key column. *)
  let boxed_wpt, int_wpt =
    let module Relation = Rsj_relation.Relation in
    let module Tuple = Rsj_relation.Tuple in
    let module Frequency = Rsj_stats.Frequency in
    let module Counter = Rsj_index.Int_index.Counter in
    let module Wr_int = Rsj_util.Wr_int in
    let env = env_uniform in
    let left = Strategy.env_left env in
    let n = Relation.cardinality left in
    let stats = Strategy.env_right_stats env in
    let left_key = Strategy.env_left_key env in
    let rng = Rsj_util.Prng.create ~seed:7 () in
    let res = Rsj_core.Reservoir.Wr.create ~r in
    let b0 = Gc.minor_words () in
    for row = 0 to n - 1 do
      let t = Relation.get left row in
      Rsj_core.Reservoir.Wr.feed rng res
        ~weight:(float_of_int (Frequency.frequency stats (Tuple.attr t left_key)))
        t
    done;
    let boxed_words = Gc.minor_words () -. b0 in
    match (Strategy.env_left_key_view env, Frequency.int_counter stats) with
    | Some keys, Some cnt ->
        let ker = Wr_int.create rng ~r in
        let i0 = Gc.minor_words () in
        for row = 0 to n - 1 do
          Wr_int.feed ker ~weight:(Counter.get cnt (Array.unsafe_get keys row)) row
        done;
        let int_words = Gc.minor_words () -. i0 in
        Wr_int.finish ker;
        (boxed_words /. float_of_int n, int_words /. float_of_int n)
    | _ -> (boxed_words /. float_of_int n, nan)
  in
  (* Draw-plane pass: the chain walker's repeated weighted picks, CDF
     binary search vs Vose alias O(1), over the same 3-level chain
     (per-value buckets plus a |R1|-wide root table), rebuilt per
     plane since the tables are baked at prepare time. sample_rows
     isolates the draw kernel (row-id paths, no tuple
     materialization); sample is the end-to-end request. The
     allocation gate mirrors the data-plane one: 10k draws through the
     packed alias kernel must allocate nothing beyond its 40-byte PRNG
     state. *)
  let module Chain_sample = Rsj_core.Chain_sample in
  let module Dist = Rsj_util.Dist in
  let chain_spec =
    let t1 = Zipf_tables.make ~seed:71 ~name:"chain1" ~rows:n1 ~z:1. ~domain:100 () in
    let t2 = Zipf_tables.make ~seed:72 ~name:"chain2" ~rows:n2 ~z:1. ~domain:100 () in
    let t3 = Zipf_tables.make ~seed:73 ~name:"chain3" ~rows:n2 ~z:1. ~domain:100 () in
    {
      Chain_sample.relations = [| t1; t2; t3 |];
      join_keys =
        [| (Zipf_tables.col2, Zipf_tables.col2); (Zipf_tables.col2, Zipf_tables.col2) |];
    }
  in
  let r_draws = 10_000 in
  let time_chain plane =
    let prev = Dist.draw_plane () in
    Dist.set_draw_plane plane;
    Fun.protect ~finally:(fun () -> Dist.set_draw_plane prev) @@ fun () ->
    let prep =
      median
        (Array.init reps (fun _ ->
             let t0 = Rsj_obs.Clock.now_s () in
             ignore (Chain_sample.prepare chain_spec);
             Rsj_obs.Clock.now_s () -. t0))
    in
    let cs = Chain_sample.prepare chain_spec in
    let rng = Rsj_util.Prng.create ~seed:99 () in
    (* Warm the structures (page in the root and bucket tables) so the
       medians measure the steady state the daemon serves from. *)
    ignore (Chain_sample.sample_rows cs rng ~r:r_draws ());
    ignore (Chain_sample.sample cs rng ~r:r_draws ());
    let kernel =
      median
        (Array.init reps (fun _ ->
             let t0 = Rsj_obs.Clock.now_s () in
             ignore (Chain_sample.sample_rows cs rng ~r:r_draws ());
             Rsj_obs.Clock.now_s () -. t0))
    in
    let full =
      median
        (Array.init reps (fun _ ->
             let t0 = Rsj_obs.Clock.now_s () in
             ignore (Chain_sample.sample cs rng ~r:r_draws ());
             Rsj_obs.Clock.now_s () -. t0))
    in
    (prep, kernel, full)
  in
  let cdf_prep, cdf_kernel, cdf_full = time_chain Dist.Cdf in
  let alias_prep, alias_kernel, alias_full = time_chain Dist.Alias in
  let alias_words_per_10k =
    let weights = Array.init 1024 (fun i -> float_of_int (1 + (i mod 17))) in
    let at = Rsj_util.Alias_int.of_weights weights in
    let rng = Rsj_util.Prng.create ~seed:5 () in
    let into = Array.make 10_000 0 in
    Rsj_util.Alias_int.draw_many at rng ~into ~n:10_000;
    let w0 = Gc.minor_words () in
    Rsj_util.Alias_int.draw_many at rng ~into ~n:10_000;
    Gc.minor_words () -. w0
  in
  (* Traced pass: the same WR grid at d = 4 with telemetry on. The
     strategy/chunk histograms observe only while enabled, so the
     quantiles below summarize exactly this pass, and the ratio against
     the untraced medians is the measured cost of tracing itself
     (EXPERIMENTS.md V10). *)
  let module Obs = Rsj_obs in
  Obs.set_enabled true;
  Obs.Trace.clear ();
  let traced =
    List.map
      (fun strategy ->
        let env, _ = cell_of strategy in
        (strategy, time_wr env strategy 4))
      Strategy.all
  in
  Obs.set_enabled false;
  let trace_events = List.length (Obs.Trace.events ()) in
  Obs.Trace.clear ();
  let num v = if Float.is_nan v then "null" else Printf.sprintf "%.6g" v in
  let strategy_hist strategy =
    Obs.Registry.histogram
      ~labels:[ ("strategy", Strategy.name strategy); ("domains", "4") ]
      "rsj_strategy_run_seconds"
  in
  let telemetry_rows =
    List.map
      (fun (strategy, traced_s) ->
        let untraced_s =
          match List.find_opt (fun (s, _, _) -> s = strategy) timings with
          | Some (_, _, per_d) ->
              List.find_map (fun (d, wr, _) -> if d = 4 then Some wr else None) per_d
          | None -> None
        in
        let h = strategy_hist strategy in
        Printf.sprintf
          {|    {"strategy": %S, "untraced_median_s": %s, "traced_median_s": %s, "trace_overhead_ratio": %s, "p50_s": %s, "p99_s": %s}|}
          (Strategy.name strategy)
          (match untraced_s with Some s -> num s | None -> "null")
          (num traced_s)
          (match untraced_s with
          | Some u when u > 0. -> num (traced_s /. u)
          | _ -> "null")
          (num (Obs.Registry.quantile h 0.5))
          (num (Obs.Registry.quantile h 0.99)))
      traced
  in
  let chunk_h = Obs.Registry.histogram "rsj_chunk_service_seconds" in
  let c = Domain_pool.counters () in
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    {|{
  "workload": {"n1": %d, "n2": %d, "domain": 1000, "seed": 42, "r": %d, "reps": %d},
  "results": [
%s
  ],
  "dataplane": {
    "results": [
%s
    ],
    "allocation": {"boxed_words_per_tuple": %.4f, "int_words_per_tuple": %.4f}
  },
  "draw_plane": {
    "chain_k": 3,
    "r_draws": %d,
    "prepare": {"cdf_median_s": %s, "alias_median_s": %s},
    "sample_rows": {"cdf_median_s": %s, "alias_median_s": %s, "speedup": %s},
    "sample": {"cdf_median_s": %s, "alias_median_s": %s, "speedup": %s},
    "allocation": {"alias_minor_words_per_10k_draws": %.1f}
  },
  "telemetry": {
    "trace_events": %d,
    "per_strategy_d4": [
%s
    ],
    "chunk_service": {"count": %d, "p50_s": %s, "p99_s": %s}
  },
  "pool": {"worker_spawns": %d, "parallel_jobs": %d, "unpooled_spawn_equivalent": %d}
}
|}
    n1 n2 r reps
    (String.concat ",\n" rows)
    (String.concat ",\n" dataplane_rows)
    boxed_wpt int_wpt
    r_draws
    (num cdf_prep) (num alias_prep)
    (num cdf_kernel) (num alias_kernel)
    (if alias_kernel > 0. then Printf.sprintf "%.3f" (cdf_kernel /. alias_kernel) else "null")
    (num cdf_full) (num alias_full)
    (if alias_full > 0. then Printf.sprintf "%.3f" (cdf_full /. alias_full) else "null")
    alias_words_per_10k
    trace_events
    (String.concat ",\n" telemetry_rows)
    (Obs.Registry.observed_count chunk_h)
    (num (Obs.Registry.quantile chunk_h 0.5))
    (num (Obs.Registry.quantile chunk_h 0.99))
    c.Domain_pool.spawned c.Domain_pool.parallel_jobs c.Domain_pool.unpooled_spawn_equivalent;
  close_out oc;
  Printf.printf "wrote BENCH_parallel.json (%d rows; pool: %d spawns for %d parallel jobs)\n%!"
    (List.length rows) c.Domain_pool.spawned c.Domain_pool.parallel_jobs

let run_micro tests =
  let quota =
    match Sys.getenv_opt "RSJ_BENCH_QUOTA" with
    | Some s -> ( match float_of_string_opt s with Some q when q > 0. -> q | _ -> 0.5)
    | None -> 0.5
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:None () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Instance.monotonic_clock ] in
  print_endline "";
  print_endline "== Bechamel micro-benchmarks (one Test.make per paper artifact + ablations) ==";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let tbl = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with Some (x :: _) -> x | _ -> nan
          in
          Printf.printf "  %-36s %14.1f ns/run\n%!" name est)
        tbl)
    tests

let () =
  let on name = Sys.getenv_opt name = Some "1" in
  if Array.exists (( = ) "--json") Sys.argv then run_json ()
  else if on "RSJ_ONLY_PARALLEL" then run_micro (parallel_tests ())
  else begin
    if not (on "RSJ_SKIP_PAPER") then Rsj_harness.Experiments.run_all Format.std_formatter;
    if not (on "RSJ_SKIP_MICRO") then run_micro (micro_tests () @ parallel_tests ())
  end

(* The sampling service end to end: a daemon subprocess (the
   [serve_child.exe] helper, exec'd — OCaml 5 forbids fork once the
   parallel suites have spawned domains in this binary) driven over
   its Unix socket. Covers the conformance contract (served
   samples byte-identical to in-process runs, all eight strategies,
   both data planes; a chi-square cell through the served path),
   the operational behavior (deadlines, admission control, graceful
   SIGTERM shutdown with socket unlink + metrics snapshot, the warm
   cache's byte budget over the wire) and the HTTP metrics endpoint. *)

open Rsj_relation
module Server = Rsj_server.Server
module Client = Rsj_server.Client
module P = Rsj_server.Protocol
module Cache = Rsj_cache.Structure_cache
module Strategy = Rsj_core.Strategy
module Zipf_tables = Rsj_workload.Zipf_tables
module Oracle = Rsj_verify.Oracle
module Kernel = Rsj_verify.Kernel
module Json = Rsj_obs.Json

let key = Zipf_tables.col2

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ---------- plumbing: spawn a daemon, connect, always reap ---------- *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rsj-test-serve-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let cleanup_dir dir =
  (try Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) (Sys.readdir dir)
   with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()

let mode_name = function Column.Boxed -> "boxed" | Column.Int_keys -> "int"

(* The daemon helper lives next to this binary in _build. The child
   inherits our environment (RSJ_CACHE_BYTES etc.) and is told the
   current column data plane so served samples stay byte-comparable
   to in-process runs on either plane. *)
let serve_child_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "serve_child.exe"

let spawn_server ?(max_queued_work = 0) ~sock ~snapshot () =
  let argv =
    [| serve_child_exe; sock; snapshot; string_of_int max_queued_work;
       mode_name (Column.mode ()) |]
  in
  Unix.create_process serve_child_exe argv Unix.stdin Unix.stdout Unix.stderr

let connect_with_retry addr =
  let rec go attempts =
    match Client.connect addr with
    | client -> client
    | exception Failure _ when attempts > 0 ->
        Unix.sleepf 0.05;
        go (attempts - 1)
  in
  go 100

let with_server ?max_queued_work f =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "rsj.sock" in
  let snapshot = Filename.concat dir "snapshot.prom" in
  let pid = spawn_server ?max_queued_work ~sock ~snapshot () in
  Fun.protect ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error (_, _, _) -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error (_, _, _) -> ());
      cleanup_dir dir)
  @@ fun () ->
  let client = connect_with_retry (Server.Unix_path sock) in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () -> f ~sock ~snapshot client

let must what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s failed: %s" what msg

let must_reply what = function
  | Ok (reply : Client.reply) -> reply
  | Error (code, msg) ->
      Alcotest.failf "%s failed (%s): %s" what (P.error_code_to_string code) msg

let zipf_schema = [ ("rid", Value.T_int); ("col2", Value.T_int); ("pad", Value.T_str) ]

let rows_of rel =
  let acc = ref [] in
  Relation.iter rel (fun t -> acc := Array.to_list t :: !acc);
  List.rev !acc

let make_pair ?(seed = 0xBEEF) () =
  Zipf_tables.make_pair ~seed ~n1:60 ~n2:240 ~z1:1. ~z2:1. ~domain:24 ()

let register_pair client pair =
  ignore
    (must "register t1" (Client.register_rows client ~name:"t1" ~schema:zipf_schema
                           ~rows:(rows_of pair.Zipf_tables.outer)));
  ignore
    (must "register t2" (Client.register_rows client ~name:"t2" ~schema:zipf_schema
                           ~rows:(rows_of pair.Zipf_tables.inner)))

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* ---------- conformance: served ≡ in-process ---------- *)

let with_mode mode f =
  let prev = Column.mode () in
  Column.set_mode mode;
  Fun.protect ~finally:(fun () -> Column.set_mode prev) f

let local_env' ~seed pair =
  Strategy.make_env ~seed ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner
    ~left_key:key ~right_key:key ()

(* For a fixed seed at domains=1 the daemon must return the very same
   bytes as the same run in this process: the FIFO loop and the warm
   cache may change who builds the structures and when, never what is
   sampled. Checked for every strategy under both data planes (the
   daemon is told the current column mode), plus the WoR conversion. *)
let test_served_identical () =
  List.iter
    (fun mode ->
      with_mode mode @@ fun () ->
      let pair = make_pair () in
      with_server @@ fun ~sock:_ ~snapshot:_ client ->
      register_pair client pair;
      let local_env () =
        Strategy.make_env ~seed:4242 ~left:pair.Zipf_tables.outer
          ~right:pair.Zipf_tables.inner ~left_key:key ~right_key:key ()
      in
      let strings_of (result : Strategy.result) =
        result.Strategy.sample |> Array.map Tuple.to_string |> Array.to_list
      in
      List.iter
        (fun s ->
          let label = mode_name mode ^ "/" ^ Strategy.name s in
          let served =
            (must_reply label
               (Client.sample client ~left:"t1" ~right:"t2" ~r:25
                  ~strategy:(Strategy.name s) ~seed:4242 ~domains:1 ()))
              .Client.rows
            |> List.map (fun row -> Tuple.to_string (Array.of_list row))
          in
          let local = strings_of (Rsj_parallel.run (local_env ()) s ~r:25 ~domains:1) in
          Alcotest.(check (list string)) (label ^ ": served = in-process") local served)
        Strategy.all;
      let served_wor =
        (must_reply "wor"
           (Client.sample client ~left:"t1" ~right:"t2" ~r:20 ~strategy:"stream" ~seed:99
              ~wor:true ~domains:1 ()))
          .Client.rows
        |> List.map (fun row -> Tuple.to_string (Array.of_list row))
      in
      let local_wor =
        strings_of (Rsj_parallel.run_wor (local_env' ~seed:99 pair) Strategy.Stream ~r:20 ~domains:1)
      in
      Alcotest.(check (list string))
        (mode_name mode ^ "/stream WoR: served = in-process")
        local_wor served_wor)
    [ Column.Boxed; Column.Int_keys ]

(* ---------- conformance: a chi-square cell through the socket ---------- *)

(* The daemon's samples must not merely match bytes at one seed — the
   distribution across seeds must still follow the WR law. Pool many
   served draws per attempt and run the standard kernel cell against
   the exact join oracle; Oracle.observe also rejects any served tuple
   that is not a genuine join row. *)
let test_served_chi_square () =
  let pair = Zipf_tables.make_pair ~seed:0xD1CE ~n1:30 ~n2:120 ~z1:1. ~z2:1. ~domain:12 () in
  let oracle =
    Oracle.of_relations ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner
      ~left_key:key ~right_key:key
  in
  with_server @@ fun ~sock:_ ~snapshot:_ client ->
  register_pair client pair;
  let r = 40 and reqs = 30 in
  let outcome =
    Kernel.run
      { Kernel.default with Kernel.comparisons = 1 }
      Kernel.Chi_square
      ~sample:(fun ~attempt ->
        let counter = Oracle.counter oracle in
        for k = 0 to reqs - 1 do
          let reply =
            must_reply "served draw"
              (Client.sample client ~left:"t1" ~right:"t2" ~r ~strategy:"stream"
                 ~seed:(100_000 + (1_000 * attempt) + k) ())
          in
          List.iter (fun row -> Oracle.observe oracle counter (Array.of_list row)) reply.Client.rows
        done;
        (Oracle.wr_expected oracle ~draws:(r * reqs), counter))
  in
  Alcotest.(check bool) "served WR draws pass the chi-square cell" true outcome.Kernel.passed

(* ---------- SQL and the fraction form over the wire ---------- *)

let test_query_over_wire () =
  let pair = make_pair () in
  with_server @@ fun ~sock:_ ~snapshot:_ client ->
  register_pair client pair;
  let reply =
    must_reply "query"
      (Client.query client
         ~sql:"select * from t1, t2 where t1.col2 = t2.col2 sample 8 using stream" ())
  in
  Alcotest.(check int) "8 sampled rows" 8 (List.length reply.Client.rows);
  let join_size = Strategy.env_join_size (local_env' ~seed:1 pair) in
  let expect = max 1 (int_of_float (Float.ceil (0.05 *. float_of_int join_size))) in
  let frac =
    must_reply "fraction query"
      (Client.query client
         ~sql:"select * from t1, t2 where t1.col2 = t2.col2 sample 5% using stream" ())
  in
  Alcotest.(check int)
    (Printf.sprintf "5%% of |J|=%d resolves to %d rows" join_size expect)
    expect
    (List.length frac.Client.rows)

(* ---------- typed errors and explicit invalidation ---------- *)

let stat_int stats field =
  match List.assoc_opt field stats with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "cache stats carry no integer %S" field

let test_typed_errors_and_invalidate () =
  let pair = make_pair () in
  with_server @@ fun ~sock:_ ~snapshot:_ client ->
  (match Client.sample client ~left:"ghost" ~right:"ghoul" ~r:4 () with
  | Error (P.Unknown_relation, _) -> ()
  | Ok _ -> Alcotest.fail "sampling unregistered relations succeeded"
  | Error (code, _) ->
      Alcotest.failf "expected unknown_relation, got %s" (P.error_code_to_string code));
  register_pair client pair;
  (match Client.sample client ~left:"t1" ~right:"t2" ~r:4 ~strategy:"bogus" () with
  | Error (P.Unknown_strategy, msg) ->
      Alcotest.(check bool) "message lists the valid names" true (contains "Olken" msg)
  | Ok _ -> Alcotest.fail "bogus strategy succeeded"
  | Error (code, _) ->
      Alcotest.failf "expected unknown_strategy, got %s" (P.error_code_to_string code));
  (* Olken forces the R2 index into the warm cache; invalidate drops it. *)
  ignore
    (must_reply "olken sample"
       (Client.sample client ~left:"t1" ~right:"t2" ~r:8 ~strategy:"olken" ~seed:3 ()));
  let entries0 = stat_int (must "stats" (Client.cache_stats client)) "entries" in
  Alcotest.(check bool) "structures cached after sampling" true (entries0 > 0);
  must "invalidate" (Client.invalidate client ~name:"t2");
  let entries1 = stat_int (must "stats" (Client.cache_stats client)) "entries" in
  Alcotest.(check bool)
    (Printf.sprintf "invalidate dropped entries (%d -> %d)" entries0 entries1)
    true (entries1 < entries0)

(* ---------- deadlines ---------- *)

(* Pipeline three real samples and then one with a 0ms budget in a
   single write: by the time the FIFO reaches the last request its
   deadline has passed, so it must fail typed — and never run. *)
let test_deadline_exceeded () =
  let pair = make_pair () in
  with_server @@ fun ~sock:_ ~snapshot:_ client ->
  register_pair client pair;
  let sample_req id ~deadline_ms =
    P.Sample
      { id; left = "t1"; right = "t2"; r = 64; strategy = Some "stream"; seed = 7 + id;
        wor = false; domains = 1; on = "col2"; deadline_ms; rid = None }
  in
  (* 0.001ms: the smallest budget the protocol accepts (0 and below are
     rejected at decode since the deadline validation landed). *)
  let reqs =
    [ sample_req 100 ~deadline_ms:None; sample_req 101 ~deadline_ms:None;
      sample_req 102 ~deadline_ms:None; sample_req 103 ~deadline_ms:(Some 0.001) ]
  in
  write_all (Client.fd client)
    (String.concat "" (List.map (fun r -> P.encode_request r ^ "\n") reqs));
  let terminal = Hashtbl.create 4 in
  while Hashtbl.length terminal < 4 do
    match Client.next_response client with
    | P.Rows _ -> ()
    | P.Ack { id; _ } | P.Done { id; _ } -> Hashtbl.replace terminal id `Ok
    | P.Failed { id; code; _ } -> Hashtbl.replace terminal id (`Failed code)
  done;
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "request %d completed" id)
        true
        (Hashtbl.find terminal id = `Ok))
    [ 100; 101; 102 ];
  match Hashtbl.find terminal 103 with
  | `Failed P.Deadline_exceeded -> ()
  | `Failed code ->
      Alcotest.failf "expected deadline_exceeded, got %s" (P.error_code_to_string code)
  | `Ok -> Alcotest.fail "the 0ms-deadline request ran anyway"

(* ---------- admission control ---------- *)

(* With a 100-tuple work budget, three pipelined r=60 samples in one
   write must admit exactly the first (the empty-queue guarantee) and
   reject the other two with the typed overload error. *)
let test_admission_overloaded () =
  let pair = make_pair () in
  with_server ~max_queued_work:100 @@ fun ~sock:_ ~snapshot:_ client ->
  register_pair client pair;
  let sample_req id =
    P.Sample
      { id; left = "t1"; right = "t2"; r = 60; strategy = Some "stream"; seed = id;
        wor = false; domains = 1; on = "col2"; deadline_ms = None; rid = None }
  in
  write_all (Client.fd client)
    (String.concat ""
       (List.map (fun id -> P.encode_request (sample_req id) ^ "\n") [ 200; 201; 202 ]));
  let terminal = Hashtbl.create 4 in
  while Hashtbl.length terminal < 3 do
    match Client.next_response client with
    | P.Rows _ -> ()
    | P.Ack { id; _ } | P.Done { id; _ } -> Hashtbl.replace terminal id `Ok
    | P.Failed { id; code; _ } -> Hashtbl.replace terminal id (`Failed code)
  done;
  Alcotest.(check bool) "first request admitted and served" true
    (Hashtbl.find terminal 200 = `Ok);
  List.iter
    (fun id ->
      match Hashtbl.find terminal id with
      | `Failed P.Overloaded -> ()
      | `Failed code ->
          Alcotest.failf "request %d: expected overloaded, got %s" id
            (P.error_code_to_string code)
      | `Ok -> Alcotest.failf "request %d was admitted over budget" id)
    [ 201; 202 ]

(* ---------- graceful shutdown and restart ---------- *)

(* SIGTERM must exit 0, unlink the socket path and write the final
   metrics snapshot — and the unlink must be real: a second daemon on
   the very same path starts and answers. *)
let test_sigterm_shutdown_restart () =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "rsj.sock" in
  let snap n = Filename.concat dir (Printf.sprintf "snap%d.prom" n) in
  let start n = spawn_server ~sock ~snapshot:(snap n) () in
  Fun.protect ~finally:(fun () -> cleanup_dir dir) @@ fun () ->
  let pid1 = start 1 in
  let c1 = connect_with_retry (Server.Unix_path sock) in
  Alcotest.(check bool) "first daemon answers" true (Client.ping c1);
  Unix.kill pid1 Sys.sigterm;
  let _, status1 = Unix.waitpid [] pid1 in
  Client.close c1;
  Alcotest.(check bool) "clean exit on SIGTERM" true (status1 = Unix.WEXITED 0);
  Alcotest.(check bool) "socket file unlinked" false (Sys.file_exists sock);
  Alcotest.(check bool) "metrics snapshot written" true (Sys.file_exists (snap 1));
  let ic = open_in (snap 1) in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Alcotest.(check bool) "snapshot is the Prometheus registry" true
    (contains "rsj_serve_connections_total" text);
  let pid2 = start 2 in
  let c2 = connect_with_retry (Server.Unix_path sock) in
  Alcotest.(check bool) "replacement daemon on the same path answers" true (Client.ping c2);
  must "shutdown" (Client.shutdown c2);
  let _, status2 = Unix.waitpid [] pid2 in
  Client.close c2;
  Alcotest.(check bool) "clean exit on shutdown op" true (status2 = Unix.WEXITED 0);
  Alcotest.(check bool) "replacement unlinked the socket too" false (Sys.file_exists sock)

(* ---------- the byte budget over the wire ---------- *)

(* Measure one join's warm-structure footprint in-process, give the
   daemon (via RSJ_CACHE_BYTES, read by the child's shared cache at
   startup) room for about two, then serve five distinct joins: the
   daemon's cache must evict and stay within its budget. *)
let test_served_eviction_budget () =
  let probe_pair k =
    Zipf_tables.make_pair ~seed:(0xFACE + (31 * k)) ~n1:40 ~n2:200 ~z1:1. ~z2:1. ~domain:20 ()
  in
  let probe = Cache.create () in
  let p0 = probe_pair 0 in
  let env =
    Cache.env probe ~seed:5 ~left:p0.Zipf_tables.outer ~right:p0.Zipf_tables.inner
      ~left_key:key ~right_key:key ()
  in
  ignore (Rsj_parallel.run env Strategy.Olken ~r:16 ~domains:1);
  let per_join = (Cache.stats probe).Cache.bytes in
  Alcotest.(check bool) "probe measured a footprint" true (per_join > 0);
  let budget = 2 * per_join in
  Unix.putenv "RSJ_CACHE_BYTES" (string_of_int budget);
  Fun.protect ~finally:(fun () -> Unix.putenv "RSJ_CACHE_BYTES" "") @@ fun () ->
  with_server @@ fun ~sock:_ ~snapshot:_ client ->
  for k = 0 to 4 do
    let p = probe_pair k in
    let l = Printf.sprintf "l%d" k and r = Printf.sprintf "r%d" k in
    ignore
      (must ("register " ^ l)
         (Client.register_rows client ~name:l ~schema:zipf_schema
            ~rows:(rows_of p.Zipf_tables.outer)));
    ignore
      (must ("register " ^ r)
         (Client.register_rows client ~name:r ~schema:zipf_schema
            ~rows:(rows_of p.Zipf_tables.inner)));
    ignore
      (must_reply ("sample " ^ l)
         (Client.sample client ~left:l ~right:r ~r:16 ~strategy:"olken" ~seed:5 ()))
  done;
  let stats = must "stats" (Client.cache_stats client) in
  Alcotest.(check int) "daemon runs under the budget" budget (stat_int stats "max_bytes");
  Alcotest.(check bool)
    (Printf.sprintf "evictions happened (%d)" (stat_int stats "evictions"))
    true
    (stat_int stats "evictions" > 0);
  Alcotest.(check bool)
    (Printf.sprintf "footprint %d within budget %d" (stat_int stats "bytes") budget)
    true
    (stat_int stats "bytes" <= budget)

(* ---------- HTTP metrics on the same socket ---------- *)

let test_http_metrics () =
  with_server @@ fun ~sock ~snapshot:_ client ->
  Alcotest.(check bool) "json client works first" true (Client.ping client);
  let http = Client.connect (Server.Unix_path sock) in
  write_all (Client.fd http) "GET /metrics HTTP/1.0\r\nHost: rsj\r\n\r\n";
  let buf = Buffer.create 4096 in
  let bytes = Bytes.create 4096 in
  let rec drain () =
    match Unix.read (Client.fd http) bytes 0 (Bytes.length bytes) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf bytes 0 n;
        drain ()
  in
  drain ();
  Client.close http;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "200 OK" true (contains "HTTP/1.1 200 OK" s);
  Alcotest.(check bool) "Content-Length present" true (contains "Content-Length:" s);
  Alcotest.(check bool) "serve metrics exported" true (contains "rsj_serve_requests_total" s);
  Alcotest.(check bool) "json clients unaffected by the sniff" true (Client.ping client)

(* ---------- protocol: rid round-trip, deadline validation ---------- *)

let test_protocol_rid_and_deadline () =
  let sample ?rid ?deadline_ms () =
    P.Sample
      { id = 7; left = "t1"; right = "t2"; r = 4; strategy = None; seed = 1; wor = false;
        domains = 1; on = "col2"; deadline_ms; rid }
  in
  let redecode req =
    match P.decode_request (P.encode_request req) with
    | Ok req' -> req'
    | Error e -> Alcotest.failf "re-decode failed: %s" e
  in
  Alcotest.(check (option string))
    "sample rid round-trips" (Some "abc-1")
    (P.request_rid (redecode (sample ~rid:"abc-1" ())));
  Alcotest.(check (option string))
    "query rid round-trips" (Some "q-9")
    (P.request_rid
       (redecode
          (P.Query { id = 3; sql = "select 1"; seed = 2; deadline_ms = Some 5.; rid = Some "q-9" })));
  (* Absent rid must be absent on the wire, and a line from a client
     that predates the field must still parse. *)
  Alcotest.(check bool)
    "absent rid leaves the wire unchanged" false
    (contains "\"rid\"" (P.encode_request (sample ())));
  (match P.decode_request {|{"op":"sample","id":11,"left":"t1","right":"t2","r":8}|} with
  | Ok (P.Sample { rid = None; deadline_ms = None; _ }) -> ()
  | Ok _ -> Alcotest.fail "old-client line decoded with a phantom rid or deadline"
  | Error e -> Alcotest.failf "old-client line rejected: %s" e);
  (* deadline_ms: zero and negative budgets are rejected at decode with
     a speaking message; positive budgets and explicit null pass. *)
  List.iter
    (fun bad ->
      let line =
        Printf.sprintf {|{"op":"query","id":1,"sql":"select 1","deadline_ms":%s}|} bad
      in
      match P.decode_request line with
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "deadline_ms=%s names the field" bad)
            true (contains "deadline_ms" msg)
      | Ok _ -> Alcotest.failf "deadline_ms=%s was accepted" bad)
    [ "0"; "0.0"; "-3"; "-0.5" ];
  (match P.decode_request {|{"op":"query","id":1,"sql":"select 1","deadline_ms":2.5}|} with
  | Ok (P.Query { deadline_ms = Some d; _ }) ->
      Alcotest.(check (float 1e-9)) "positive budget kept" 2.5 d
  | Ok _ -> Alcotest.fail "positive budget lost"
  | Error e -> Alcotest.failf "positive budget rejected: %s" e);
  match P.decode_request {|{"op":"query","id":1,"sql":"select 1","deadline_ms":null}|} with
  | Ok (P.Query { deadline_ms = None; _ }) -> ()
  | Ok _ -> Alcotest.fail "null deadline not treated as absent"
  | Error e -> Alcotest.failf "null deadline rejected: %s" e

(* ---------- health endpoint: 200 serving, 503 while draining ---------- *)

let http_get fd path =
  write_all fd (Printf.sprintf "GET %s HTTP/1.0\r\nHost: rsj\r\n\r\n" path);
  let buf = Buffer.create 1024 in
  let bytes = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd bytes 0 (Bytes.length bytes) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf bytes 0 n;
        drain ()
  in
  drain ();
  Buffer.contents buf

let test_healthz_serving () =
  with_server @@ fun ~sock ~snapshot:_ client ->
  Alcotest.(check bool) "json client works" true (Client.ping client);
  let http = Client.connect (Server.Unix_path sock) in
  let s = http_get (Client.fd http) "/healthz" in
  Client.close http;
  Alcotest.(check bool) "200 while serving" true (contains "HTTP/1.1 200 OK" s);
  Alcotest.(check bool) "body says ok" true (contains "ok" s);
  Alcotest.(check bool) "json clients unaffected" true (Client.ping client)

(* A load balancer learns about a drain from /healthz flipping to 503:
   RSJ_SERVE_DRAIN_LINGER_MS keeps the loop alive past SIGTERM so a
   probe connection accepted before the signal can still ask. *)
let test_healthz_draining () =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "rsj.sock" in
  let snapshot = Filename.concat dir "snap.prom" in
  Unix.putenv "RSJ_SERVE_DRAIN_LINGER_MS" "2000";
  Fun.protect ~finally:(fun () -> Unix.putenv "RSJ_SERVE_DRAIN_LINGER_MS" "") @@ fun () ->
  let pid = spawn_server ~sock ~snapshot () in
  Fun.protect ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error (_, _, _) -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error (_, _, _) -> ());
      cleanup_dir dir)
  @@ fun () ->
  let client = connect_with_retry (Server.Unix_path sock) in
  Alcotest.(check bool) "daemon answers before SIGTERM" true (Client.ping client);
  let probe = Client.connect (Server.Unix_path sock) in
  (* Give the select loop a beat to accept the probe — the listener
     closes the moment the drain begins. *)
  Unix.sleepf 0.3;
  Unix.kill pid Sys.sigterm;
  Unix.sleepf 0.3;
  let s = http_get (Client.fd probe) "/healthz" in
  Client.close probe;
  Client.close client;
  Alcotest.(check bool) "503 while draining" true (contains "HTTP/1.1 503" s);
  Alcotest.(check bool) "body says draining" true (contains "draining" s);
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "drained daemon exits clean" true (status = Unix.WEXITED 0)

(* ---------- one id across response, trace and request log ---------- *)

let read_whole path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Drive one picker-routed query with a client-chosen rid under
   RSJ_TRACE + RSJ_LOG: the very same id must come back in the done
   frame, tag the request/picker spans in the trace the daemon writes
   at exit, and key the NDJSON request-log line. *)
let test_request_id_end_to_end () =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "rsj.sock" in
  let snapshot = Filename.concat dir "snap.prom" in
  let trace = Filename.concat dir "trace.json" in
  let log = Filename.concat dir "requests.ndjson" in
  let rid = "e2e-rid-42" in
  Unix.putenv "RSJ_TRACE" trace;
  Unix.putenv "RSJ_LOG" log;
  Fun.protect ~finally:(fun () ->
      Unix.putenv "RSJ_TRACE" "";
      Unix.putenv "RSJ_LOG" "";
      cleanup_dir dir)
  @@ fun () ->
  let pair = make_pair () in
  let pid = spawn_server ~sock ~snapshot () in
  let detail =
    Fun.protect ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error (_, _, _) -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error (_, _, _) -> ()))
    @@ fun () ->
    let client = connect_with_retry (Server.Unix_path sock) in
    Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
    register_pair client pair;
    let reply =
      must_reply "traced query"
        (Client.query client ~sql:"select * from t1, t2 where t1.col2 = t2.col2 sample 8"
           ~rid ())
    in
    reply.Client.detail
  in
  (* 1. The done frame echoes the id. *)
  (match List.assoc_opt "request_id" detail with
  | Some (Json.Str s) -> Alcotest.(check string) "response echoes the rid" rid s
  | _ -> Alcotest.fail "done frame carries no request_id");
  (* 2. The trace the daemon wrote at exit tags its spans with it. *)
  Alcotest.(check bool) "trace file written at exit" true (Sys.file_exists trace);
  (match Json.parse (read_whole trace) with
  | Error e -> Alcotest.failf "trace is not JSON: %s" e
  | Ok j ->
      let events =
        match Json.member "traceEvents" j with Some (Json.List l) -> l | _ -> []
      in
      let tagged name ev =
        match (Json.member "name" ev, Json.member "args" ev) with
        | Some (Json.Str n), Some args when n = name -> (
            match Json.member "req" args with Some (Json.Str s) -> s = rid | _ -> false)
        | _ -> false
      in
      Alcotest.(check bool) "the request span carries the rid" true
        (List.exists (tagged "request") events);
      Alcotest.(check bool) "the picker decision carries the rid" true
        (List.exists (tagged "picker.decision") events));
  (* 3. The request log has exactly one line keyed by it, with the
     fields an operator greps for. *)
  Alcotest.(check bool) "request log written" true (Sys.file_exists log);
  let lines =
    String.split_on_char '\n' (read_whole log) |> List.filter (fun l -> l <> "")
  in
  let parsed =
    List.filter_map
      (fun l -> match Json.parse l with Ok j -> Some j | Error _ -> None)
      lines
  in
  let mine =
    List.filter
      (fun j -> match Json.member "req" j with Some (Json.Str s) -> s = rid | _ -> false)
      parsed
  in
  Alcotest.(check int) "exactly one log line for the rid" 1 (List.length mine);
  let line = List.hd mine in
  let str k =
    match Json.member k line with
    | Some (Json.Str s) -> s
    | _ -> Alcotest.failf "log line carries no string %S" k
  in
  Alcotest.(check string) "log op" "query" (str "op");
  Alcotest.(check string) "log status" "ok" (str "status");
  Alcotest.(check bool) "log names the picked strategy" true (str "strategy" <> "none");
  Alcotest.(check bool) "log carries the sql" true (contains "sample 8" (str "sql"));
  Alcotest.(check bool) "log times the request" true
    (match Json.member "latency_s" line with Some (Json.Float _) -> true | _ -> false);
  Alcotest.(check bool) "log counts allocation" true
    (match Json.member "alloc_words" line with
    | Some (Json.Float _) | Some (Json.Int _) -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "served samples byte-identical (8 strategies × 2 planes)" `Slow
      test_served_identical;
    Alcotest.test_case "chi-square cell through the served path" `Slow test_served_chi_square;
    Alcotest.test_case "SQL and SAMPLE p% over the wire" `Quick test_query_over_wire;
    Alcotest.test_case "typed errors and explicit invalidation" `Quick
      test_typed_errors_and_invalidate;
    Alcotest.test_case "queued past the deadline fails typed" `Quick test_deadline_exceeded;
    Alcotest.test_case "admission control sheds load" `Quick test_admission_overloaded;
    Alcotest.test_case "SIGTERM: unlink, snapshot, restartable" `Quick
      test_sigterm_shutdown_restart;
    Alcotest.test_case "RSJ_CACHE_BYTES bounds the daemon cache" `Quick
      test_served_eviction_budget;
    Alcotest.test_case "GET /metrics on the service socket" `Quick test_http_metrics;
    Alcotest.test_case "rid round-trips; bad deadlines rejected at decode" `Quick
      test_protocol_rid_and_deadline;
    Alcotest.test_case "GET /healthz answers 200 while serving" `Quick test_healthz_serving;
    Alcotest.test_case "GET /healthz answers 503 during the drain" `Quick
      test_healthz_draining;
    Alcotest.test_case "one request id across response, trace and log" `Quick
      test_request_id_end_to_end;
  ]

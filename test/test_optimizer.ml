(* The cost-based strategy picker: golden decision table over synthetic
   catalog states, cost-formula agreement with the Join_size analytics
   on a real instance, the normal quantile, and the error-report
   machinery backing the per-query guarantees. *)

module Strategy = Rsj_core.Strategy
module Frequency = Rsj_stats.Frequency
module Histogram = Rsj_stats.Histogram
module Join_size = Rsj_stats.Join_size
module Zipf_tables = Rsj_workload.Zipf_tables
module Stats_math = Rsj_util.Stats_math
module Catalog = Rsj_optimizer.Catalog
module Cost_model = Rsj_optimizer.Cost_model
module Picker = Rsj_optimizer.Picker
module Error_report = Rsj_optimizer.Error_report
module Tuple = Rsj_relation.Tuple
module Value = Rsj_relation.Value

(* ------------------------------------------------------------------ *)
(* Synthetic fixtures: n1 = 40 over 8 uniform values; n2 = 80 either
   uniform (8 × 10) or skewed (v1:50, v2..v7:5). |J| = 400 both ways.
   The 20% end-biased histogram (threshold 16) tracks only v1 in the
   skewed table and nothing in the uniform one. *)

let v i = Value.Int i
let m1_uniform = Frequency.of_assoc (List.init 8 (fun i -> (v (i + 1), 5)))
let m2_uniform = Frequency.of_assoc (List.init 8 (fun i -> (v (i + 1), 10)))

let m2_skew =
  Frequency.of_assoc ((v 1, 50) :: List.init 6 (fun i -> (v (i + 2), 5)))

let hist_of m2 = Histogram.End_biased.build_fraction m2 ~fraction:0.2

type profile = Full | No_index | Histogram_only | Index_only | Bare

let availability = function
  | Full -> Strategy.all_available
  | No_index ->
      { Strategy.left_index = false; right_index = false; right_stats = true; right_histogram = true }
  | Histogram_only ->
      { Strategy.left_index = false; right_index = false; right_stats = false; right_histogram = true }
  | Index_only ->
      { Strategy.left_index = true; right_index = true; right_stats = false; right_histogram = false }
  | Bare -> Strategy.nothing_available

let catalog ?(join_size = 400.) profile m2 =
  let a = availability profile in
  Catalog.make ~availability:a
    ?left_stats:(if a.Strategy.right_stats then Some m1_uniform else None)
    ?right_stats:(if a.Strategy.right_stats then Some m2 else None)
    ?histogram:(if a.Strategy.right_histogram then Some (hist_of m2) else None)
    ~join_size_exact:a.Strategy.right_stats ~n1:40 ~n2:80 ~join_size ()

(* The empty join: full statistics over disjoint domains (no histogram,
   so the partition strategies stay out of the comparison). *)
let empty_join_catalog =
  Catalog.make
    ~availability:{ Strategy.all_available with Strategy.right_histogram = false }
    ~left_stats:m1_uniform
    ~right_stats:(Frequency.of_assoc (List.init 7 (fun i -> (v (i + 101), 5))))
    ~join_size_exact:true ~n1:40 ~n2:35 ~join_size:0. ()

(* ------------------------------------------------------------------ *)
(* Golden decision table: every row hand-checked against the paper's
   formulas (Theorems 5-9, §6.4). *)

let golden_cells =
  [
    (* label, catalog, r, expected winner, expected reason *)
    ("full uniform r=8", catalog Full m2_uniform, 8, Strategy.Olken, Picker.Cheapest);
    ("full uniform r=64", catalog Full m2_uniform, 64, Strategy.Olken, Picker.Cheapest);
    ("full skew r=8", catalog Full m2_skew, 8, Strategy.Olken, Picker.Cheapest);
    (* Olken pays r·M·n1/|J| = 64·50·40/400 = 320 > Stream's 104. *)
    ("full skew r=64", catalog Full m2_skew, 64, Strategy.Stream, Picker.Cheapest);
    ("full skew r=0", catalog Full m2_skew, 0, Strategy.Olken, Picker.Cheapest);
    (* |J| = 0 makes Olken's acceptance loop run forever (Thm 5 cost is
       infinite); Group degenerates to its n1 scan and wins. *)
    ("full empty join r=8", empty_join_catalog, 8, Strategy.Group, Picker.Cheapest);
    ("no-index uniform r=8", catalog No_index m2_uniform, 8, Strategy.Stream, Picker.Cheapest);
    ("no-index skew r=8", catalog No_index m2_skew, 8, Strategy.Stream, Picker.Cheapest);
    ("no-index skew r=64", catalog No_index m2_skew, 64, Strategy.Stream, Picker.Cheapest);
    ("histogram-only skew r=8", catalog Histogram_only m2_skew, 8, Strategy.Hybrid_count, Picker.Cheapest);
    ("histogram-only uniform r=8", catalog Histogram_only m2_uniform, 8, Strategy.Hybrid_count, Picker.Cheapest);
    (* At r = 320 Hybrid (n1+n2+r = 440) ties Frequency-Partition
       (n1 + lo + 0 = 440, nothing tracked): rank breaks the tie. *)
    ("histogram-only uniform r=320 tie", catalog Histogram_only m2_uniform, 320, Strategy.Hybrid_count, Picker.Cheapest);
    (* Index but no statistics: M is only bounded by n2 = 80, so Olken
       costs r·80·40/400; Stream still wins at r=8, Olken at r=2. *)
    ("index-only r=8", catalog Index_only m2_uniform, 8, Strategy.Stream, Picker.Cheapest);
    ("index-only r=2", catalog Index_only m2_uniform, 2, Strategy.Olken, Picker.Cheapest);
    ("bare r=8", catalog Bare m2_skew, 8, Strategy.Naive, Picker.Only_feasible);
  ]

let test_golden_decisions () =
  List.iter
    (fun (label, cat, r, expect, expect_reason) ->
      let chosen, decision = Picker.choose cat (Cost_model.shape ~r) in
      Alcotest.(check string) label (Strategy.name expect) (Strategy.name chosen);
      Alcotest.(check string)
        (label ^ " reason")
        (Picker.reason_to_string expect_reason)
        (Picker.reason_to_string decision.Picker.reason);
      Alcotest.(check int)
        (label ^ " candidates cover all strategies")
        (List.length Strategy.all)
        (List.length decision.Picker.candidates))
    golden_cells;
  Alcotest.(check bool) "table has at least 12 cells" true (List.length golden_cells >= 12)

let feasible_cost decision strategy =
  match
    List.find_opt
      (fun (c : Cost_model.costing) -> c.Cost_model.strategy = strategy)
      decision.Picker.candidates
  with
  | Some { Cost_model.verdict = Cost_model.Feasible cost; _ } -> cost
  | Some { Cost_model.verdict = Cost_model.Infeasible _; _ } ->
      Alcotest.failf "%s unexpectedly infeasible" (Strategy.name strategy)
  | None -> Alcotest.failf "%s missing from candidates" (Strategy.name strategy)

let test_golden_costs_pinned () =
  (* Spot-pin the arithmetic behind the headline rows. *)
  let _, d = Picker.choose (catalog Full m2_skew) (Cost_model.shape ~r:8) in
  Alcotest.(check (float 1e-9)) "Olken skew r=8" 40. (feasible_cost d Strategy.Olken);
  Alcotest.(check (float 1e-9)) "Stream skew r=8" 48. (feasible_cost d Strategy.Stream);
  Alcotest.(check (float 1e-9)) "Naive skew" 520. (feasible_cost d Strategy.Naive);
  Alcotest.(check (float 1e-9)) "Count skew r=8" 128. (feasible_cost d Strategy.Count_sample);
  (* FPS with exact stats: lo = 150, per-draw = Σ_hi m1m2²/Σ_hi m1m2 =
     12500/250 = 50 → 40 + 150 + 8·50 = 590. *)
  Alcotest.(check (float 1e-9)) "FPS skew r=8" 590.
    (feasible_cost d Strategy.Frequency_partition);
  Alcotest.(check (float 1e-9)) "Index-Sample skew r=8" 198.
    (feasible_cost d Strategy.Index_sample);
  (* Group: Σ m1m2² = 5·2500 + 6·5·25 = 13250 → 40 + 8·13250/400 = 305. *)
  Alcotest.(check (float 1e-9)) "Group skew r=8" 305. (feasible_cost d Strategy.Group);
  let _, d0 = Picker.choose empty_join_catalog (Cost_model.shape ~r:8) in
  Alcotest.(check bool) "Olken infinite on empty join" true
    (feasible_cost d0 Strategy.Olken = infinity);
  Alcotest.(check (float 1e-9)) "Group = n1 on empty join" 40.
    (feasible_cost d0 Strategy.Group)

let test_decision_trace () =
  let _, d = Picker.choose (catalog Bare m2_skew) (Cost_model.shape ~r:8) in
  let missing strategy =
    match
      List.find
        (fun (c : Cost_model.costing) -> c.Cost_model.strategy = strategy)
        d.Picker.candidates
    with
    | { Cost_model.verdict = Cost_model.Infeasible m; _ } -> m
    | _ -> Alcotest.failf "%s unexpectedly feasible on a bare catalog" (Strategy.name strategy)
  in
  Alcotest.(check (list string)) "Olken names both gaps"
    [ "index(R1)"; "index(R2) or statistics(R2)" ]
    (missing Strategy.Olken);
  Alcotest.(check (list string)) "Group needs statistics" [ "statistics(R2)" ]
    (missing Strategy.Group);
  Alcotest.(check (list string)) "FPS needs the histogram"
    [ "end-biased histogram(R2)" ]
    (missing Strategy.Frequency_partition);
  Alcotest.(check (list string)) "Index-Sample needs histogram and hi-index"
    [ "end-biased histogram(R2)"; "index(R2hi)" ]
    (missing Strategy.Index_sample);
  let text = Picker.to_string d in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "trace mentions %S" needle)
        true
        (let n = String.length needle and ln = String.length text in
         let rec scan i = i + n <= ln && (String.sub text i n = needle || scan (i + 1)) in
         scan 0))
    [ "only-feasible"; "Naive-Sample"; "infeasible"; "no structures" ]

let test_rank_order () =
  let expect =
    [
      Strategy.Stream; Strategy.Count_sample; Strategy.Hybrid_count; Strategy.Index_sample;
      Strategy.Frequency_partition; Strategy.Group; Strategy.Olken; Strategy.Naive;
    ]
  in
  let sorted = List.sort (fun a b -> compare (Picker.rank a) (Picker.rank b)) Strategy.all in
  Alcotest.(check (list string)) "tie-break preference order"
    (List.map Strategy.name expect) (List.map Strategy.name sorted)

(* ------------------------------------------------------------------ *)
(* The cost model against the Join_size analytics on a real instance.  *)

let test_costs_agree_with_join_size () =
  let pair = Zipf_tables.make_pair ~seed:0x0C0D ~n1:40 ~n2:80 ~z1:1. ~z2:2. ~domain:6 () in
  let env =
    Strategy.make_env ~seed:0x0C0D ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner
      ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()
  in
  let cat = Catalog.of_env ~availability:Strategy.all_available env in
  let m1 = Option.get cat.Catalog.left_stats and m2 = Option.get cat.Catalog.right_stats in
  Alcotest.(check bool) "catalog join size is exact" true cat.Catalog.join_size_exact;
  Alcotest.(check (float 1e-9)) "catalog |J| = frequency join size"
    (float_of_int (Frequency.join_size m1 m2))
    cat.Catalog.join_size;
  let r = 16 in
  let _, d = Picker.choose cat (Cost_model.shape ~r) in
  Alcotest.(check (float 1e-6)) "Olken cost = r x Thm-5 iterations"
    (float_of_int r *. Join_size.olken_expected_iterations ~m1 ~m2)
    (feasible_cost d Strategy.Olken);
  Alcotest.(check (float 1e-6)) "Group cost = n1 + r x Thm-7 moment ratio"
    (float_of_int cat.Catalog.n1
    +. (float_of_int r *. Join_size.self_join_moment m1 m2 /. cat.Catalog.join_size))
    (feasible_cost d Strategy.Group)

let test_of_env_masks_structures () =
  let pair = Zipf_tables.make_pair ~seed:0x0C0E ~n1:30 ~n2:60 ~z1:0. ~z2:1. ~domain:5 () in
  let env =
    Strategy.make_env ~seed:0x0C0E ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner
      ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()
  in
  let bare = Catalog.of_env ~availability:Strategy.nothing_available env in
  Alcotest.(check bool) "bare: no stats" true (bare.Catalog.right_stats = None);
  Alcotest.(check bool) "bare: no histogram" true (bare.Catalog.histogram = None);
  Alcotest.(check bool) "bare: join size estimated" false bare.Catalog.join_size_exact;
  Alcotest.(check bool) "bare: estimate non-negative" true (bare.Catalog.join_size >= 0.);
  let exact = float_of_int (Zipf_tables.join_size pair) in
  let full = Catalog.of_env ~availability:Strategy.all_available env in
  Alcotest.(check (float 1e-9)) "full: exact join size" exact full.Catalog.join_size;
  (* The estimators carry sampling error; index-assisted on this small
     instance should still land within a few sigma of the truth. *)
  let indexed =
    Catalog.of_env
      ~availability:{ Strategy.all_available with Strategy.right_stats = false; right_histogram = false }
      env
  in
  Alcotest.(check bool) "index-assisted estimate close to exact" true
    (Float.abs (indexed.Catalog.join_size -. exact)
    <= Float.max 1. (4. *. indexed.Catalog.join_size_stderr))

(* ------------------------------------------------------------------ *)
(* Normal quantile                                                     *)

let test_normal_quantile () =
  Alcotest.(check (float 1e-6)) "q(0.975)" 1.959964 (Stats_math.normal_quantile 0.975);
  Alcotest.(check (float 1e-6)) "q(0.5)" 0. (Stats_math.normal_quantile 0.5);
  Alcotest.(check (float 1e-6)) "q symmetric" (-1.959964) (Stats_math.normal_quantile 0.025);
  Alcotest.(check (float 1e-6)) "q(0.995)" 2.575829 (Stats_math.normal_quantile 0.995);
  (* Round-trips through the survival function it inverts. *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "sf(q(%g)) = 1-%g" p p)
        (1. -. p)
        (Stats_math.normal_sf (Stats_math.normal_quantile p)))
    [ 0.01; 0.1; 0.5; 0.9; 0.99 ];
  List.iter
    (fun p ->
      Alcotest.check_raises
        (Printf.sprintf "p=%g rejected" p)
        (Invalid_argument (Printf.sprintf "Stats_math.normal_quantile: p=%g outside (0,1)" p))
        (fun () -> ignore (Stats_math.normal_quantile p)))
    [ 0.; 1.; -0.5 ]

(* ------------------------------------------------------------------ *)
(* Error report                                                        *)

let toy_sample =
  (* 8 draws of (rid, amount) rows; amounts span [1, 9]. *)
  Array.of_list
    (List.map
       (fun (rid, amount) -> Tuple.create [ Value.Int rid; Value.Int amount ])
       [ (1, 2); (2, 4); (3, 9); (4, 1); (5, 6); (6, 3); (7, 8); (8, 5) ])

let test_error_report_units () =
  let report = Error_report.make ~range:(0., 10.) ~sample:toy_sample ~n:100 ~col:1 () in
  Alcotest.(check int) "three lines" 3 (List.length report.Error_report.lines);
  let line name = Option.get (Error_report.line report name) in
  let sum = line "sum" and count = line "count" and avg = line "avg" in
  (* HT-SUM: mean of n·g = 100 · 38/8 = 475. *)
  Alcotest.(check (float 1e-9)) "HT sum estimate" 475. sum.Error_report.estimate;
  (* Default predicate keeps everything: the count estimate is exactly
     n with a degenerate CLT interval. *)
  Alcotest.(check (float 1e-9)) "HT count estimate" 100. count.Error_report.estimate;
  Alcotest.(check (float 1e-9)) "count CLT interval degenerate" 0.
    (Error_report.width count.Error_report.clt);
  Alcotest.(check bool) "count Hoeffding interval is not degenerate" true
    (Error_report.width count.Error_report.hoeffding > 0.);
  Alcotest.(check (float 1e-9)) "avg estimate" 4.75 avg.Error_report.estimate;
  List.iter
    (fun (l : Error_report.line) ->
      Alcotest.(check bool)
        (l.Error_report.aggregate ^ " estimate inside both intervals")
        true
        (Error_report.contains l.Error_report.clt l.Error_report.estimate
        && Error_report.contains l.Error_report.hoeffding l.Error_report.estimate))
    report.Error_report.lines;
  (* With a declared range, the distribution-free interval must be the
     wider one for SUM and AVG (the count CLT is degenerate here). *)
  List.iter
    (fun name ->
      let l = line name in
      Alcotest.(check bool)
        (name ^ ": Hoeffding at least as wide as CLT")
        true
        (Error_report.width l.Error_report.hoeffding
        >= Error_report.width l.Error_report.clt))
    [ "sum"; "count"; "avg" ];
  Alcotest.(check bool) "range not assumed" false report.Error_report.range_assumed;
  let assumed = Error_report.make ~sample:toy_sample ~n:100 ~col:1 () in
  Alcotest.(check bool) "absent range flagged" true assumed.Error_report.range_assumed

let test_error_report_predicate () =
  let pred t = match Tuple.get t 1 with Value.Int a -> a mod 2 = 0 | _ -> false in
  let report = Error_report.make ~range:(0., 10.) ~pred ~sample:toy_sample ~n:100 ~col:1 () in
  let line name = Option.get (Error_report.line report name) in
  (* 4 of 8 draws qualify (amounts 2, 4, 6, 8). *)
  Alcotest.(check (float 1e-9)) "HT count with predicate" 50.
    (line "count").Error_report.estimate;
  Alcotest.(check (float 1e-9)) "HT sum with predicate" (100. *. 20. /. 8.)
    (line "sum").Error_report.estimate;
  Alcotest.(check (float 1e-9)) "avg over qualifying draws" 5.
    (line "avg").Error_report.estimate;
  (* A predicate nothing satisfies: avg degrades to an infinite
     interval instead of a bogus point estimate. *)
  let none = Error_report.make ~range:(0., 10.) ~pred:(fun _ -> false) ~sample:toy_sample ~n:100 ~col:1 () in
  let avg = Option.get (Error_report.line none "avg") in
  Alcotest.(check bool) "empty avg has infinite interval" true
    (avg.Error_report.clt.Error_report.lo = neg_infinity
    && avg.Error_report.clt.Error_report.hi = infinity);
  Alcotest.(check (float 1e-9)) "empty count estimate 0" 0.
    (Option.get (Error_report.line none "count")).Error_report.estimate

let test_error_report_validation () =
  let check_invalid name f =
    Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  check_invalid "empty sample rejected" (fun () ->
      Error_report.make ~sample:[||] ~n:10 ~col:0 ());
  check_invalid "negative join size rejected" (fun () ->
      Error_report.make ~sample:toy_sample ~n:(-1) ~col:0 ());
  check_invalid "confidence 1 rejected" (fun () ->
      Error_report.make ~confidence:1. ~sample:toy_sample ~n:10 ~col:0 ());
  check_invalid "inverted range rejected" (fun () ->
      Error_report.make ~range:(5., 1.) ~sample:toy_sample ~n:10 ~col:0 ());
  check_invalid "negative shape rejected" (fun () -> Cost_model.shape ~r:(-1))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "golden decision table" `Quick test_golden_decisions;
    Alcotest.test_case "golden costs pinned" `Quick test_golden_costs_pinned;
    Alcotest.test_case "decision trace explains infeasibility" `Quick test_decision_trace;
    Alcotest.test_case "tie-break rank order" `Quick test_rank_order;
    Alcotest.test_case "costs agree with Join_size analytics" `Quick test_costs_agree_with_join_size;
    Alcotest.test_case "of_env respects availability mask" `Quick test_of_env_masks_structures;
    Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
    Alcotest.test_case "error report units" `Quick test_error_report_units;
    Alcotest.test_case "error report predicate" `Quick test_error_report_predicate;
    Alcotest.test_case "error report validation" `Quick test_error_report_validation;
  ]

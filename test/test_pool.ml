(* Domain_pool lifecycle and the pooled runtime's bit-identity
   guarantee.

   The pool's contract: workers spawn lazily and are reused across
   calls; a job that raises neither kills its worker nor wedges the
   barrier; shutdown joins everything and later runs degrade to the
   sequential fallback. On top sits the acceptance regression for the
   runtime: a fixed seed yields bit-identical samples at pool widths
   1, 2 and 4 for every chunk-scheduled strategy, WR and WoR — the
   chunk cut and the per-chunk generators never depend on the domain
   count, only on the chunk index. *)

open Rsj_relation
open Rsj_core
module Zipf_tables = Rsj_workload.Zipf_tables

let small_env ?(seed = 0xAB) () =
  let pair = Zipf_tables.make_pair ~seed ~n1:40 ~n2:80 ~z1:1. ~z2:2. ~domain:6 () in
  Strategy.make_env ~seed ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
    ~right_key:Zipf_tables.col2 ()

let test_pool_run_and_reuse () =
  let pool = Domain_pool.create () in
  Alcotest.(check int) "fresh pool holds no workers" 0 (Domain_pool.live_workers pool);
  let out = Domain_pool.run pool ~domains:4 (fun k -> k * k) in
  Alcotest.(check (array int)) "results in index order" [| 0; 1; 4; 9 |] out;
  Alcotest.(check int) "grew to domains-1 workers" 3 (Domain_pool.live_workers pool);
  let before = (Domain_pool.counters ()).Domain_pool.spawned in
  let out2 = Domain_pool.run pool ~domains:4 (fun k -> k + 10) in
  Alcotest.(check (array int)) "second job reuses workers" [| 10; 11; 12; 13 |] out2;
  let after = (Domain_pool.counters ()).Domain_pool.spawned in
  Alcotest.(check int) "no new spawns on reuse" before after;
  (* A narrower job also reuses; a single-index job never claims. *)
  Alcotest.(check (array int)) "narrower job" [| 0; 1 |]
    (Domain_pool.run pool ~domains:2 (fun k -> k));
  Alcotest.(check (array int)) "domains=1 runs on the caller" [| 7 |]
    (Domain_pool.run pool ~domains:1 (fun _ -> 7));
  Alcotest.(check (array int)) "domains=0 is empty" [||]
    (Domain_pool.run pool ~domains:0 (fun k -> k));
  Alcotest.(check int) "width never shrank the pool" 3 (Domain_pool.live_workers pool);
  Domain_pool.shutdown pool

let test_pool_survives_worker_exception () =
  let pool = Domain_pool.create () in
  let raised =
    try
      ignore (Domain_pool.run pool ~domains:4 (fun k -> if k = 2 then failwith "boom" else k));
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "worker exception propagates to the caller" true raised;
  Alcotest.(check int) "workers survive the exception" 3 (Domain_pool.live_workers pool);
  Alcotest.(check (array int)) "pool still runs jobs" [| 0; 2; 4; 6 |]
    (Domain_pool.run pool ~domains:4 (fun k -> 2 * k));
  (* A caller-side (index 0) exception must behave the same. *)
  let raised0 =
    try
      ignore (Domain_pool.run pool ~domains:3 (fun k -> if k = 0 then failwith "zero" else k));
      false
    with Failure m -> m = "zero"
  in
  Alcotest.(check bool) "caller exception propagates" true raised0;
  Alcotest.(check (array int)) "pool usable after caller exception" [| 0; 1; 2 |]
    (Domain_pool.run pool ~domains:3 (fun k -> k));
  Domain_pool.shutdown pool

let test_pool_shutdown () =
  let pool = Domain_pool.create () in
  ignore (Domain_pool.run pool ~domains:4 (fun k -> k));
  Alcotest.(check int) "workers live before shutdown" 3 (Domain_pool.live_workers pool);
  Domain_pool.shutdown pool;
  Alcotest.(check int) "no live workers after shutdown" 0 (Domain_pool.live_workers pool);
  Domain_pool.shutdown pool;
  (* Idempotent, and a closed pool still answers — sequentially. *)
  Alcotest.(check (array int)) "closed pool falls back to the caller" [| 0; 1; 4; 9 |]
    (Domain_pool.run pool ~domains:4 (fun k -> k * k));
  Alcotest.(check int) "fallback spawned nothing" 0 (Domain_pool.live_workers pool)

let test_pool_chunk_scheduler_private_pool () =
  let module Chunk_scheduler = Rsj_parallel.Chunk_scheduler in
  let pool = Domain_pool.create () in
  let out, stats =
    Chunk_scheduler.run ~pool ~domains:3 ~chunks:17 ~task:(fun i -> i + 1) ()
  in
  Alcotest.(check (array int)) "chunk results in order" (Array.init 17 (fun i -> i + 1)) out;
  Alcotest.(check int) "claims sum to chunks" 17
    (Array.fold_left ( + ) 0 stats.Chunk_scheduler.claims);
  (* A raising task propagates and leaves the pool alive. *)
  let raised =
    try
      ignore
        (Chunk_scheduler.run ~pool ~domains:3 ~chunks:9
           ~task:(fun i -> if i = 5 then failwith "chunk" else i)
           ());
      false
    with Failure m -> m = "chunk"
  in
  Alcotest.(check bool) "chunk task exception propagates" true raised;
  Alcotest.(check int) "pool alive after chunk exception" 2 (Domain_pool.live_workers pool);
  Domain_pool.shutdown pool

let strategies_deterministic =
  List.filter (fun s -> s <> Strategy.Olken) Strategy.all

(* The acceptance criterion: same seed, same sample, at widths 1, 2
   and 4 — for every chunk-scheduled strategy, WR and WoR. Olken is
   exempt by design (speculative ticketing). *)
let check_identical what samples =
  match samples with
  | [] | [ _ ] -> ()
  | (d0, first) :: rest ->
      List.iter
        (fun (d, sample) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: d=%d size = d=%d size" what d d0)
            (Array.length first) (Array.length sample);
          Array.iteri
            (fun i t ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: d=%d bit-identical to d=%d" what d d0)
                true
                (Tuple.equal t sample.(i)))
            first)
        rest

let test_bit_identity_across_widths () =
  List.iter
    (fun s ->
      check_identical
        (Strategy.name s ^ " WR")
        (List.map
           (fun d ->
             (d, (Rsj_parallel.run (small_env ~seed:13 ()) s ~r:12 ~domains:d).Strategy.sample))
           [ 1; 2; 4 ]))
    strategies_deterministic

let test_bit_identity_across_widths_wor () =
  List.iter
    (fun s ->
      check_identical
        (Strategy.name s ^ " WoR")
        (List.map
           (fun d ->
             ( d,
               (Rsj_parallel.run_wor (small_env ~seed:13 ()) s ~r:12 ~domains:d)
                 .Strategy.sample ))
           [ 1; 2; 4 ]))
    strategies_deterministic

let test_spawn_accounting () =
  (* After any pooled work at all, the legacy (spawn-per-call) cost
     must dominate the pooled cost — that is the point of the pool. *)
  ignore (Rsj_parallel.run (small_env ()) Strategy.Stream ~r:8 ~domains:4);
  ignore (Rsj_parallel.run (small_env ()) Strategy.Group ~r:8 ~domains:4);
  let c = Domain_pool.counters () in
  Alcotest.(check bool) "some parallel jobs ran" true (c.Domain_pool.parallel_jobs > 0);
  Alcotest.(check bool) "spawns bounded by legacy equivalent" true
    (c.Domain_pool.spawned <= c.Domain_pool.unpooled_spawn_equivalent)

let suite =
  [
    Alcotest.test_case "pool runs, grows lazily, reuses workers" `Quick test_pool_run_and_reuse;
    Alcotest.test_case "pool survives job exceptions" `Quick test_pool_survives_worker_exception;
    Alcotest.test_case "pool shutdown joins and degrades cleanly" `Quick test_pool_shutdown;
    Alcotest.test_case "chunk scheduler on a private pool" `Quick
      test_pool_chunk_scheduler_private_pool;
    Alcotest.test_case "samples bit-identical across widths (WR)" `Quick
      test_bit_identity_across_widths;
    Alcotest.test_case "samples bit-identical across widths (WoR)" `Quick
      test_bit_identity_across_widths_wor;
    Alcotest.test_case "pooled spawns never exceed the unpooled cost" `Quick
      test_spawn_accounting;
  ]

(* Compact data plane: the columnar int fast path must be a perfect
   twin of the boxed plane.

   Three layers of evidence:
   - the Wr_int kernel replays Reservoir.Wr's draw sequence bit-for-bit
     (slots AND the post-finish generator stream agree);
   - with a fixed seed, every chunked strategy produces bit-identical
     samples whether Column.mode is Boxed or Int_keys, WR and WoR, at
     domain widths 1, 2 and 4 (Olken at width 1 only — wider Olken is
     timing-dependent by design);
   - the int inner loop really is allocation-free: feeding 10k tuples
     through the Stream-Sample kernel costs < 256 minor words. *)

open Rsj_relation
open Rsj_core
module Zipf_tables = Rsj_workload.Zipf_tables
module Prng = Rsj_util.Prng
module Wr_int = Rsj_util.Wr_int
module Counter = Rsj_index.Int_index.Counter

let with_mode mode f =
  let prev = Column.mode () in
  Column.set_mode mode;
  Fun.protect ~finally:(fun () -> Column.set_mode prev) f

let drain rng =
  let a = Array.make 8 0 in
  for i = 0 to 7 do
    a.(i) <- Prng.int rng 1_000_000
  done;
  a

(* --- Kernel equivalence: Wr_int vs Reservoir.Wr --- *)

let test_kernel_equivalence () =
  List.iter
    (fun (seed, r, n) ->
      let weights =
        let wrng = Prng.create ~seed:((seed * 7) + 1) () in
        (* Mixed regimes: zeros (ignored), dominant early weights (the
           large-mean binomial detour), and a long light tail (the
           inlined inversion path). *)
        Array.init n (fun i -> if i < 3 then 50 * (i + 1) else Prng.int wrng 5)
      in
      let rng_box = Prng.create ~seed () in
      let res = Reservoir.Wr.create ~r in
      Array.iteri
        (fun i w -> Reservoir.Wr.feed rng_box res ~weight:(float_of_int w) i)
        weights;
      let boxed = Reservoir.Wr.contents res in
      let rng_int = Prng.create ~seed () in
      let ker = Wr_int.create rng_int ~r in
      Array.iteri (fun i w -> Wr_int.feed ker ~weight:w i) weights;
      Wr_int.finish ker;
      let label what = Printf.sprintf "%s (seed=%d r=%d n=%d)" what seed r n in
      Alcotest.(check (array int)) (label "slots") boxed (Wr_int.contents ker);
      Alcotest.(check int) (label "fed") (Reservoir.Wr.fed_count res) (Wr_int.fed_count ker);
      Alcotest.(check (float 1e-9))
        (label "total")
        (Reservoir.Wr.total_weight res)
        (Wr_int.total_weight ker);
      Alcotest.(check (array int)) (label "post-finish stream") (drain rng_box) (drain rng_int))
    [ (1, 4, 100); (2, 1, 57); (3, 16, 1000); (4, 8, 8); (5, 3, 0); (6, 5, 3000) ]

(* Two kernels interleaved on one generator (the partition route) must
   replay two interleaved Reservoir.Wr feeds. *)
let test_linked_kernels () =
  let seed = 42 and r = 5 and n = 400 in
  let route = Array.init n (fun i -> (i * 2654435761) land 7) in
  let rng_box = Prng.create ~seed () in
  let hi = Reservoir.Wr.create ~r and lo = Reservoir.Wr.create ~r in
  Array.iteri
    (fun i b ->
      if b < 4 then Reservoir.Wr.feed rng_box hi ~weight:(float_of_int (b + 1)) i
      else Reservoir.Wr.feed rng_box lo ~weight:1. i)
    route;
  let rng_int = Prng.create ~seed () in
  let hik = Wr_int.create rng_int ~r in
  let lok = Wr_int.create_linked hik ~r in
  Array.iteri
    (fun i b ->
      if b < 4 then Wr_int.feed hik ~weight:(b + 1) i else Wr_int.feed lok ~weight:1 i)
    route;
  Wr_int.finish hik;
  Alcotest.(check (array int)) "hi slots" (Reservoir.Wr.contents hi) (Wr_int.contents hik);
  Alcotest.(check (array int)) "lo slots" (Reservoir.Wr.contents lo) (Wr_int.contents lok);
  Alcotest.(check (array int)) "post-finish stream" (drain rng_box) (drain rng_int)

(* --- Column views --- *)

let test_int_view () =
  let schema = Schema.of_list [ ("k", Value.T_int); ("s", Value.T_str) ] in
  let rel =
    Relation.of_tuples schema
      [
        [| Value.Int 3; Value.Str "a" |];
        [| Value.Null; Value.Str "b" |];
        [| Value.Int (-7); Value.Str "c" |];
      ]
  in
  (match Column.int_view rel ~col:0 with
  | Some keys ->
      Alcotest.(check (array int)) "keys with Null sentinel"
        [| 3; Column.null_key; -7 |]
        keys
  | None -> Alcotest.fail "int column should be viewable");
  Alcotest.(check bool) "string column escapes" true (Column.int_view rel ~col:1 = None)

(* --- Boxed vs int bit-identity through the full stack --- *)

let env_of_seed seed =
  let pair = Zipf_tables.make_pair ~seed ~n1:40 ~n2:80 ~z1:1. ~z2:2. ~domain:6 () in
  Strategy.make_env ~seed ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
    ~right_key:Zipf_tables.col2 ()

let check_same what a b =
  Alcotest.(check int) (what ^ ": size") (Array.length a) (Array.length b);
  Array.iteri
    (fun i t ->
      Alcotest.(check bool) (Printf.sprintf "%s: tuple %d" what i) true (Tuple.equal t b.(i)))
    a

let sample_with mode run = with_mode mode (fun () -> run (env_of_seed 13))

let test_planes_bit_identical_sequential () =
  List.iter
    (fun s ->
      let run env = (Strategy.run env s ~r:12).Strategy.sample in
      check_same
        (Strategy.name s ^ " sequential")
        (sample_with Column.Boxed run)
        (sample_with Column.Int_keys run))
    Strategy.all

let test_planes_bit_identical_parallel () =
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          let run env = (Rsj_parallel.run env s ~r:12 ~domains:d).Strategy.sample in
          check_same
            (Printf.sprintf "%s WR d=%d" (Strategy.name s) d)
            (sample_with Column.Boxed run)
            (sample_with Column.Int_keys run))
        (if s = Strategy.Olken then [ 1 ] else [ 1; 2; 4 ]))
    Strategy.all

let test_planes_bit_identical_parallel_wor () =
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          let run env = (Rsj_parallel.run_wor env s ~r:12 ~domains:d).Strategy.sample in
          check_same
            (Printf.sprintf "%s WoR d=%d" (Strategy.name s) d)
            (sample_with Column.Boxed run)
            (sample_with Column.Int_keys run))
        (if s = Strategy.Olken then [ 1 ] else [ 1; 2; 4 ]))
    Strategy.all

(* --- Allocation regression: the Stream-Sample int inner loop ---

   The per-tuple work of the columnar Stream-Sample S1 pass is one
   Counter probe plus one Wr_int.feed. Feeding 10k tuples must cost
   fewer than 256 minor words — i.e. the loop itself allocates nothing;
   the budget only absorbs the handful of boxed-float round-trips the
   rare slow-binomial regime is allowed. *)
let test_inner_loop_allocation () =
  let n = 10_000 in
  let keys = Array.init n (fun i -> i land 63) in
  let freq = Counter.create ~capacity:256 () in
  Array.iter (fun k -> Counter.add freq k 1) keys;
  let rng = Prng.create ~seed:7 () in
  let ker = Wr_int.create rng ~r:16 in
  (* Warm up so lazy runtime pieces (callbacks, tables) are paid. *)
  for row = 0 to 99 do
    Wr_int.feed ker ~weight:(Counter.get freq keys.(row)) row
  done;
  let before = Gc.minor_words () in
  for row = 0 to n - 1 do
    Wr_int.feed ker ~weight:(Counter.get freq (Array.unsafe_get keys row)) row
  done;
  let words = Gc.minor_words () -. before in
  Wr_int.finish ker;
  if words >= 256. then
    Alcotest.failf "Stream int inner loop allocated %.0f minor words per %d tuples" words n

let suite =
  [
    Alcotest.test_case "Wr_int kernel replays Reservoir.Wr bit-for-bit" `Quick
      test_kernel_equivalence;
    Alcotest.test_case "linked kernels share one generator stream" `Quick test_linked_kernels;
    Alcotest.test_case "int_view extraction and escape" `Quick test_int_view;
    Alcotest.test_case "boxed and int planes bit-identical (sequential)" `Quick
      test_planes_bit_identical_sequential;
    Alcotest.test_case "boxed and int planes bit-identical (parallel WR)" `Quick
      test_planes_bit_identical_parallel;
    Alcotest.test_case "boxed and int planes bit-identical (parallel WoR)" `Quick
      test_planes_bit_identical_parallel_wor;
    Alcotest.test_case "int inner loop allocates < 256 minor words / 10k tuples" `Quick
      test_inner_loop_allocation;
  ]

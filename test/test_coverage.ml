(* Empirical interval-coverage harness for Error_report.

   Draws many independent WR samples of the same join, builds the
   per-query error report for each, and checks that the CLT and
   Hoeffding intervals cover the true aggregate at least as often as
   the nominal confidence promises. Hoeffding is distribution-free, so
   its coverage must meet the nominal level outright; the CLT interval
   is asymptotic, so it gets a binomial-noise allowance below nominal.

   [RSJ_COVERAGE_TRIALS] scales the number of trials, mirroring
   [RSJ_CONF_TRIALS] in the conformance sweep. *)

open Rsj_relation
module Strategy = Rsj_core.Strategy
module Zipf_tables = Rsj_workload.Zipf_tables
module Oracle = Rsj_verify.Oracle
module Error_report = Rsj_optimizer.Error_report

let env_coverage_trials fallback =
  match Sys.getenv_opt "RSJ_COVERAGE_TRIALS" with
  | None -> fallback
  | Some s when String.trim s = "" -> fallback
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ ->
          invalid_arg
            (Printf.sprintf "RSJ_COVERAGE_TRIALS must be a positive integer, got %S" s))

let confidence = 0.95
let sample_r = 160

(* The aggregated column is the outer rid; the predicate keeps even
   rids, so COUNT is a genuine selectivity estimate rather than the
   degenerate all-rows case. *)
let g_col = Zipf_tables.col_rid

let numeric t =
  match Tuple.get t g_col with
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | _ -> 0.

let pred t =
  match Tuple.get t g_col with Value.Int i -> i mod 2 = 0 | _ -> false

type truth = {
  pair : Zipf_tables.pair;
  join_size : int;
  range : float * float;
  true_sum : float;
  true_count : float;
  true_avg : float;
}

let truth =
  lazy
    (let pair =
       Zipf_tables.make_pair ~seed:0xC0FE ~n1:40 ~n2:80 ~z1:1.0 ~z2:2.0 ~domain:6 ()
     in
     let oracle =
       Oracle.of_relations ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner
         ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2
     in
     let universe = Oracle.universe oracle in
     let n = Array.length universe in
     let lo = ref infinity and hi = ref neg_infinity in
     let sum = ref 0. and count = ref 0 in
     Array.iter
       (fun t ->
         let x = numeric t in
         if x < !lo then lo := x;
         if x > !hi then hi := x;
         if pred t then (
           sum := !sum +. x;
           incr count))
       universe;
     {
       pair;
       join_size = n;
       range = (!lo, !hi);
       true_sum = !sum;
       true_count = float_of_int !count;
       true_avg = !sum /. float_of_int !count;
     })

let report_for_trial truth trial =
  let env =
    Strategy.make_env ~seed:(0x5EED + (trial * 7919)) ~left:truth.pair.Zipf_tables.outer
      ~right:truth.pair.Zipf_tables.inner ~left_key:Zipf_tables.col2
      ~right_key:Zipf_tables.col2 ()
  in
  let result = Strategy.run env Strategy.Stream ~r:sample_r in
  Error_report.make ~confidence ~range:truth.range ~pred ~sample:result.Strategy.sample
    ~n:truth.join_size ~col:g_col ()

(* One counter per aggregate × interval family. *)
type counters = { mutable clt : int; mutable hoeffding : int }

let test_interval_coverage () =
  let truth = Lazy.force truth in
  let trials = env_coverage_trials 150 in
  let sum_c = { clt = 0; hoeffding = 0 }
  and count_c = { clt = 0; hoeffding = 0 }
  and avg_c = { clt = 0; hoeffding = 0 } in
  for trial = 0 to trials - 1 do
    let report = report_for_trial truth trial in
    let tally counters name target =
      match Error_report.line report name with
      | None -> Alcotest.failf "report is missing the %s line" name
      | Some line ->
          if Error_report.contains line.Error_report.clt target then
            counters.clt <- counters.clt + 1;
          if Error_report.contains line.Error_report.hoeffding target then
            counters.hoeffding <- counters.hoeffding + 1
    in
    tally sum_c "sum" truth.true_sum;
    tally count_c "count" truth.true_count;
    tally avg_c "avg" truth.true_avg
  done;
  let ft = float_of_int trials in
  (* Binomial standard error of an empirical coverage proportion at
     the nominal level; the CLT intervals are asymptotic, so they are
     allowed to fall this far below nominal before we call it a
     failure. Hoeffding is finite-sample valid and gets no slack. *)
  let slack = 2.5 *. sqrt (confidence *. (1. -. confidence) /. ft) in
  let check name counters =
    let clt_rate = float_of_int counters.clt /. ft in
    let hoeff_rate = float_of_int counters.hoeffding /. ft in
    if clt_rate < confidence -. slack then
      Alcotest.failf "%s CLT coverage %.3f < %.3f (nominal %.2f - slack %.3f, %d trials)"
        name clt_rate (confidence -. slack) confidence slack trials;
    if hoeff_rate < confidence then
      Alcotest.failf "%s Hoeffding coverage %.3f < nominal %.2f (%d trials)" name
        hoeff_rate confidence trials
  in
  check "sum" sum_c;
  check "count" count_c;
  check "avg" avg_c

(* The Hoeffding interval must dominate the CLT interval's width once
   the range is declared: it trades the distributional assumption for
   width, never the other way round at these sample sizes. *)
let test_hoeffding_wider () =
  let truth = Lazy.force truth in
  let report = report_for_trial truth 0 in
  List.iter
    (fun name ->
      match Error_report.line report name with
      | None -> Alcotest.failf "report is missing the %s line" name
      | Some line ->
          if
            Error_report.width line.Error_report.hoeffding
            < Error_report.width line.Error_report.clt
          then
            Alcotest.failf "%s: Hoeffding width %.3f < CLT width %.3f" name
              (Error_report.width line.Error_report.hoeffding)
              (Error_report.width line.Error_report.clt))
    [ "sum"; "count" ]

let test_trials_env_knob () =
  let with_env value f =
    Unix.putenv "RSJ_COVERAGE_TRIALS" value;
    Fun.protect ~finally:(fun () -> Unix.putenv "RSJ_COVERAGE_TRIALS" "") f
  in
  with_env "25" (fun () ->
      Alcotest.(check int) "override wins" 25 (env_coverage_trials 150));
  with_env "" (fun () ->
      Alcotest.(check int) "blank falls back" 150 (env_coverage_trials 150));
  with_env "zero-ish" (fun () ->
      Alcotest.check_raises "non-numeric rejected"
        (Invalid_argument "RSJ_COVERAGE_TRIALS must be a positive integer, got \"zero-ish\"")
        (fun () -> ignore (env_coverage_trials 150)));
  with_env "0" (fun () ->
      Alcotest.check_raises "zero rejected"
        (Invalid_argument "RSJ_COVERAGE_TRIALS must be a positive integer, got \"0\"")
        (fun () -> ignore (env_coverage_trials 150)))

let suite =
  [
    Alcotest.test_case "interval coverage >= nominal" `Slow test_interval_coverage;
    Alcotest.test_case "hoeffding dominates clt width" `Quick test_hoeffding_wider;
    Alcotest.test_case "RSJ_COVERAGE_TRIALS knob" `Quick test_trials_env_knob;
  ]

open Rsj_util

let feq = Alcotest.(check (float 1e-9))

let test_log_gamma_known_values () =
  (* Gamma(n) = (n-1)! *)
  feq "lgamma 1" 0. (Stats_math.log_gamma 1.);
  feq "lgamma 2" 0. (Stats_math.log_gamma 2.);
  Alcotest.(check (float 1e-10)) "lgamma 5 = ln 24" (log 24.) (Stats_math.log_gamma 5.);
  Alcotest.(check (float 1e-10)) "lgamma 11 = ln 10!" (log 3628800.) (Stats_math.log_gamma 11.);
  (* Gamma(1/2) = sqrt(pi) *)
  Alcotest.(check (float 1e-10)) "lgamma 0.5" (0.5 *. log Float.pi) (Stats_math.log_gamma 0.5)

let test_log_gamma_invalid () =
  Alcotest.check_raises "x=0" (Invalid_argument "Stats_math.log_gamma: requires x > 0")
    (fun () -> ignore (Stats_math.log_gamma 0.))

let test_log_choose () =
  Alcotest.(check (float 1e-9)) "10 choose 3" (log 120.) (Stats_math.log_choose 10 3);
  feq "n choose 0" 0. (Stats_math.log_choose 7 0);
  feq "n choose n" 0. (Stats_math.log_choose 7 7);
  Alcotest.(check bool) "k>n impossible" true (Stats_math.log_choose 3 5 = neg_infinity);
  Alcotest.(check bool) "k<0 impossible" true (Stats_math.log_choose 3 (-1) = neg_infinity)

let test_binomial_pmf_sums_to_one () =
  let n = 20 and p = 0.3 in
  let total = ref 0. in
  for k = 0 to n do
    total := !total +. exp (Stats_math.log_binomial_pmf ~n ~p k)
  done;
  Alcotest.(check (float 1e-9)) "pmf sums to 1" 1. !total

let test_binomial_pmf_edges () =
  Alcotest.(check (float 1e-12)) "p=0, k=0" 0. (Stats_math.log_binomial_pmf ~n:5 ~p:0. 0);
  Alcotest.(check bool) "p=0, k=1" true (Stats_math.log_binomial_pmf ~n:5 ~p:0. 1 = neg_infinity);
  Alcotest.(check (float 1e-12)) "p=1, k=n" 0. (Stats_math.log_binomial_pmf ~n:5 ~p:1. 5)

let test_regularized_gamma_known () =
  (* P(1, x) = 1 - exp(-x) *)
  Alcotest.(check (float 1e-10)) "P(1,1)" (1. -. exp (-1.)) (Stats_math.regularized_gamma_p ~a:1. ~x:1.);
  Alcotest.(check (float 1e-10)) "P(1,5)" (1. -. exp (-5.)) (Stats_math.regularized_gamma_p ~a:1. ~x:5.);
  feq "P(a,0)" 0. (Stats_math.regularized_gamma_p ~a:3. ~x:0.);
  Alcotest.(check (float 1e-10)) "P + Q = 1" 1.
    (Stats_math.regularized_gamma_p ~a:2.5 ~x:3.
    +. Stats_math.regularized_gamma_q ~a:2.5 ~x:3.)

let test_chi_square_cdf_known () =
  (* dof=2: CDF(x) = 1 - exp(-x/2); median of chi2_1 ~ 0.4549 *)
  Alcotest.(check (float 1e-9)) "dof2 cdf" (1. -. exp (-1.)) (Stats_math.chi_square_cdf ~dof:2 2.);
  Alcotest.(check (float 1e-3)) "dof1 median" 0.5 (Stats_math.chi_square_cdf ~dof:1 0.454936);
  Alcotest.(check (float 1e-4)) "dof10 95th pct at 18.307" 0.95
    (Stats_math.chi_square_cdf ~dof:10 18.307)

let test_chi_square_sf_complement () =
  for dof = 1 to 12 do
    let x = float_of_int dof *. 1.3 in
    Alcotest.(check (float 1e-9)) "cdf + sf = 1" 1.
      (Stats_math.chi_square_cdf ~dof x +. Stats_math.chi_square_sf ~dof x)
  done

let test_chi_square_test_perfect_fit () =
  let res =
    Stats_math.chi_square_test ~expected:[| 25.; 25.; 25.; 25. |] ~observed:[| 25; 25; 25; 25 |]
  in
  feq "statistic 0" 0. res.statistic;
  Alcotest.(check (float 1e-9)) "p-value 1" 1. res.p_value;
  Alcotest.(check int) "dof" 3 res.dof

let test_chi_square_test_extreme_misfit () =
  let res = Stats_math.chi_square_test ~expected:[| 50.; 50. |] ~observed:[| 100; 0 |] in
  Alcotest.(check bool) "p tiny" true (res.p_value < 1e-6)

let test_chi_square_test_zero_cells () =
  let res = Stats_math.chi_square_test ~expected:[| 50.; 0.; 50. |] ~observed:[| 48; 0; 52 |] in
  Alcotest.(check int) "zero cell dropped from dof" 1 res.dof;
  Alcotest.check_raises "observation in zero cell"
    (Invalid_argument "Stats_math.chi_square_test: observation in a zero-probability cell")
    (fun () ->
      ignore (Stats_math.chi_square_test ~expected:[| 50.; 0. |] ~observed:[| 49; 1 |]))

let test_chi_square_test_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats_math.chi_square_test: length mismatch") (fun () ->
      ignore (Stats_math.chi_square_test ~expected:[| 1. |] ~observed:[| 1; 2 |]))

let test_g_test_tracks_chi_square () =
  (* On moderate deviations the likelihood-ratio statistic is close to
     Pearson's; both accept uniform data and reject gross bias. *)
  let expected = Array.make 5 100. in
  let ok = Stats_math.g_test ~expected ~observed:[| 98; 103; 99; 101; 99 |] in
  Alcotest.(check bool) "uniform accepted" true (ok.Stats_math.p_value > 0.5);
  Alcotest.(check int) "dof" 4 ok.Stats_math.dof;
  let bad = Stats_math.g_test ~expected ~observed:[| 300; 50; 50; 50; 50 |] in
  Alcotest.(check bool) "bias rejected" true (bad.Stats_math.p_value < 1e-10);
  let chi = Stats_math.chi_square_test ~expected ~observed:[| 98; 103; 99; 101; 99 |] in
  Alcotest.(check bool) "G ~ Pearson on mild data" true
    (Float.abs (ok.Stats_math.statistic -. chi.Stats_math.statistic) < 0.05)

let test_normal_sf_known () =
  Alcotest.(check (float 1e-12)) "sf 0 = 1/2" 0.5 (Stats_math.normal_sf 0.);
  Alcotest.(check (float 1e-4)) "sf 1.96" 0.025 (Stats_math.normal_sf 1.96);
  Alcotest.(check (float 1e-4)) "sf -1.96" 0.975 (Stats_math.normal_sf (-1.96));
  Alcotest.(check (float 1e-9)) "complement" 1.
    (Stats_math.normal_sf 0.7 +. Stats_math.normal_sf (-0.7))

let test_kolmogorov_sf_known () =
  (* Classical table values of the Kolmogorov distribution. *)
  Alcotest.(check (float 1e-3)) "sf 0.5" 0.9639 (Stats_math.kolmogorov_sf 0.5);
  Alcotest.(check (float 1e-4)) "sf 1.0" 0.2700 (Stats_math.kolmogorov_sf 1.0);
  Alcotest.(check (float 1e-4)) "sf 2.0" 0.00067 (Stats_math.kolmogorov_sf 2.0);
  Alcotest.(check (float 1e-12)) "sf 0 = 1" 1. (Stats_math.kolmogorov_sf 0.)

let test_ks_test_behaviour () =
  (* An evenly spread sample against the uniform CDF passes; the same
     sample against a badly shifted CDF fails. *)
  let samples = Array.init 100 (fun i -> (float_of_int i +. 0.5) /. 100.) in
  let uniform = Stats_math.ks_test ~cdf:(fun x -> Float.max 0. (Float.min 1. x)) ~samples in
  Alcotest.(check bool) "uniform sample accepted" true (uniform.Stats_math.ks_p_value > 0.9);
  Alcotest.(check int) "n recorded" 100 uniform.Stats_math.n;
  let shifted = Stats_math.ks_test ~cdf:(fun x -> Float.max 0. (Float.min 1. (x ** 3.))) ~samples in
  Alcotest.(check bool) "shifted CDF rejected" true (shifted.Stats_math.ks_p_value < 1e-6);
  Alcotest.check_raises "empty sample rejected"
    (Invalid_argument "Stats_math.ks_test: no samples") (fun () ->
      ignore (Stats_math.ks_test ~cdf:Fun.id ~samples:[||]))

let test_descriptive_stats () =
  let a = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  feq "mean" 5. (Stats_math.mean a);
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Stats_math.variance a);
  Alcotest.(check bool) "mean of empty is nan" true (Float.is_nan (Stats_math.mean [||]));
  Alcotest.(check bool) "variance of singleton is nan" true
    (Float.is_nan (Stats_math.variance [| 1. |]))

let test_median_percentile () =
  feq "odd median" 3. (Stats_math.median [| 5.; 3.; 1. |]);
  feq "even median" 2.5 (Stats_math.median [| 4.; 1.; 2.; 3. |]);
  feq "p0 is min" 1. (Stats_math.percentile [| 3.; 1.; 2. |] 0.);
  feq "p100 is max" 3. (Stats_math.percentile [| 3.; 1.; 2. |] 100.);
  feq "p50 interpolates" 1.5 (Stats_math.percentile [| 1.; 2. |] 50.);
  Alcotest.(check bool) "median of empty is nan" true (Float.is_nan (Stats_math.median [||]))

let test_percentile_does_not_mutate () =
  let a = [| 3.; 1.; 2. |] in
  ignore (Stats_math.percentile a 50.);
  Alcotest.(check (array (float 0.))) "unchanged" [| 3.; 1.; 2. |] a

let suite =
  [
    Alcotest.test_case "log_gamma known values" `Quick test_log_gamma_known_values;
    Alcotest.test_case "log_gamma rejects x <= 0" `Quick test_log_gamma_invalid;
    Alcotest.test_case "log_choose" `Quick test_log_choose;
    Alcotest.test_case "binomial pmf sums to 1" `Quick test_binomial_pmf_sums_to_one;
    Alcotest.test_case "binomial pmf edge p" `Quick test_binomial_pmf_edges;
    Alcotest.test_case "regularized gamma identities" `Quick test_regularized_gamma_known;
    Alcotest.test_case "chi-square CDF known points" `Quick test_chi_square_cdf_known;
    Alcotest.test_case "chi-square CDF/SF complement" `Quick test_chi_square_sf_complement;
    Alcotest.test_case "chi-square perfect fit" `Quick test_chi_square_test_perfect_fit;
    Alcotest.test_case "chi-square extreme misfit" `Quick test_chi_square_test_extreme_misfit;
    Alcotest.test_case "chi-square zero-expectation cells" `Quick test_chi_square_test_zero_cells;
    Alcotest.test_case "chi-square length mismatch" `Quick test_chi_square_test_mismatch;
    Alcotest.test_case "G-test tracks Pearson" `Quick test_g_test_tracks_chi_square;
    Alcotest.test_case "normal survival function" `Quick test_normal_sf_known;
    Alcotest.test_case "Kolmogorov survival function" `Quick test_kolmogorov_sf_known;
    Alcotest.test_case "one-sample KS test" `Quick test_ks_test_behaviour;
    Alcotest.test_case "mean / variance" `Quick test_descriptive_stats;
    Alcotest.test_case "median / percentile" `Quick test_median_percentile;
    Alcotest.test_case "percentile leaves input intact" `Quick test_percentile_does_not_mutate;
  ]

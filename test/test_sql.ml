open Rsj_relation
module Parser = Rsj_sql.Parser
module Ast = Rsj_sql.Ast
module Engine = Rsj_sql.Engine

(* ---------- parser ---------- *)

let parse_ok q =
  match Parser.parse q with
  | Ok ast -> ast
  | Error msg -> Alcotest.failf "parse failed: %s (query: %s)" msg q

let parse_err q =
  match Parser.parse q with
  | Ok _ -> Alcotest.failf "expected parse error for: %s" q
  | Error msg -> msg

let test_tokenize () =
  (match Parser.tokenize "SELECT a.b, 12 FROM t WHERE x = 'it''s'" with
  | Ok toks ->
      Alcotest.(check (list string)) "tokens"
        [ "SELECT"; "a"; "."; "b"; ","; "12"; "FROM"; "t"; "WHERE"; "x"; "="; "'it's" ]
        toks
  | Error e -> Alcotest.fail e);
  (match Parser.tokenize "a <= b <> c != d" with
  | Ok toks -> Alcotest.(check (list string)) "ops" [ "a"; "<="; "b"; "<>"; "c"; "<>"; "d" ] toks
  | Error e -> Alcotest.fail e);
  match Parser.tokenize "bad $ char" with
  | Ok _ -> Alcotest.fail "should reject $"
  | Error _ -> ()

let test_parse_star_join () =
  let q = parse_ok "SELECT * FROM t1, t2 WHERE t1.col2 = t2.col2" in
  Alcotest.(check int) "two tables" 2 (List.length q.Ast.from);
  Alcotest.(check int) "one condition" 1 (List.length q.Ast.where);
  Alcotest.(check bool) "star" true (q.Ast.select = [ Ast.S_star ]);
  match q.Ast.where with
  | [ { Ast.left; cmp = Ast.Eq; right = Ast.O_col rc } ] ->
      Alcotest.(check string) "left qualified" "t1.col2" (Ast.column_to_string left);
      Alcotest.(check string) "right qualified" "t2.col2" (Ast.column_to_string rc)
  | _ -> Alcotest.fail "unexpected condition shape"

let test_parse_sample_clause () =
  let q = parse_ok "select * from t1, t2 where t1.a = t2.a sample 100 using stream" in
  (match q.Ast.sample with
  | Some { Ast.size = Ast.Abs 100; strategy = Some "stream" } -> ()
  | _ -> Alcotest.fail "sample clause not parsed");
  let q2 = parse_ok "select * from t sample 50" in
  match q2.Ast.sample with
  | Some { Ast.size = Ast.Abs 50; strategy = None } -> ()
  | _ -> Alcotest.fail "plain sample not parsed"

(* SAMPLE p%: the fraction form of the sampling clause. *)
let test_parse_sample_fraction () =
  let q = parse_ok "select * from t1, t2 where t1.a = t2.a sample 5% using stream" in
  (match q.Ast.sample with
  | Some { Ast.size = Ast.Pct 5.; strategy = Some "stream" } -> ()
  | _ -> Alcotest.fail "integer percentage not parsed");
  let q2 = parse_ok "select * from t1, t2 where t1.a = t2.a sample 2.5%" in
  (match q2.Ast.sample with
  | Some { Ast.size = Ast.Pct 2.5; strategy = None } -> ()
  | _ -> Alcotest.fail "fractional percentage not parsed");
  ignore (parse_err "select * from t sample 0%");
  ignore (parse_err "select * from t sample 150%");
  ignore (parse_err "select * from t sample -5%");
  (* A non-integer count without the % sign stays an error. *)
  ignore (parse_err "select * from t sample 2.5")

let test_parse_aggregates () =
  let q =
    parse_ok
      "select category, count(*), sum(amount) as total from sales group by category limit 5"
  in
  Alcotest.(check int) "three items" 3 (List.length q.Ast.select);
  (match q.Ast.select with
  | [ Ast.S_col _; Ast.S_agg (Ast.Count, None, None); Ast.S_agg (Ast.Sum, Some c, Some "total") ]
    ->
      Alcotest.(check string) "sum column" "amount" c.Ast.name
  | _ -> Alcotest.fail "select items wrong");
  Alcotest.(check bool) "limit" true (q.Ast.limit = Some 5);
  Alcotest.(check int) "group by" 1 (List.length q.Ast.group_by)

let test_parse_literals_and_ops () =
  let q =
    parse_ok "select a from t where a >= 10 and b < 2.5 and c = 'x' and d <> 3"
  in
  Alcotest.(check int) "four conditions" 4 (List.length q.Ast.where)

let test_parse_errors () =
  let has_err q = ignore (parse_err q) in
  has_err "FROM t";
  has_err "select from t";
  has_err "select * from";
  has_err "select * from t where";
  has_err "select * from t sample";
  has_err "select * from t sample -3";
  has_err "select * from t trailing garbage ,";
  has_err "select count( from t"

(* ---------- engine ---------- *)

let orders_schema =
  Schema.of_list [ ("oid", Value.T_int); ("cust", Value.T_int); ("amount", Value.T_float) ]

let customers_schema = Schema.of_list [ ("cust", Value.T_int); ("city", Value.T_str) ]

let catalog () =
  let orders =
    Relation.of_tuples ~name:"orders" orders_schema
      [
        [| Value.Int 1; Value.Int 10; Value.Float 5. |];
        [| Value.Int 2; Value.Int 10; Value.Float 7. |];
        [| Value.Int 3; Value.Int 20; Value.Float 11. |];
        [| Value.Int 4; Value.Int 30; Value.Float 13. |];
      ]
  in
  let customers =
    Relation.of_tuples ~name:"customers" customers_schema
      [
        [| Value.Int 10; Value.str "oslo" |];
        [| Value.Int 20; Value.str "kyoto" |];
        [| Value.Int 20; Value.str "kyoto-east" |];
      ]
  in
  let regions =
    Relation.of_tuples ~name:"regions"
      (Schema.of_list [ ("city", Value.T_str); ("region", Value.T_str) ])
      [
        [| Value.str "oslo"; Value.str "north" |];
        [| Value.str "kyoto"; Value.str "east" |];
        [| Value.str "kyoto"; Value.str "west" |];
      ]
  in
  [ ("orders", orders); ("customers", customers); ("regions", regions) ]

let run_ok q =
  match Engine.run (catalog ()) q with
  | Ok r -> r
  | Error msg -> Alcotest.failf "query failed: %s (%s)" msg q

let run_err q =
  match Engine.run (catalog ()) q with
  | Ok _ -> Alcotest.failf "expected failure: %s" q
  | Error msg -> msg

let test_single_table_scan () =
  let r = run_ok "select * from orders" in
  Alcotest.(check int) "4 rows" 4 (List.length r.Engine.rows);
  Alcotest.(check int) "arity 3" 3 (Schema.arity r.Engine.schema)

let test_projection_and_filter () =
  let r = run_ok "select oid from orders where amount > 6 and cust = 10" in
  Alcotest.(check int) "one row" 1 (List.length r.Engine.rows);
  Alcotest.(check int) "oid 2" 2 (Value.to_int_exn (Tuple.get (List.hd r.Engine.rows) 0))

let test_join () =
  let r = run_ok "select * from orders, customers where orders.cust = customers.cust" in
  (* orders 1,2 join cust 10 (1 row); order 3 joins cust 20 (2 rows);
     order 4 unmatched: 2 + 2 = 4 rows *)
  Alcotest.(check int) "join rows" 4 (List.length r.Engine.rows);
  Alcotest.(check int) "arity 5" 5 (Schema.arity r.Engine.schema)

let test_join_with_alias () =
  let r = run_ok "select o.oid, c.city from orders o, customers c where o.cust = c.cust" in
  Alcotest.(check int) "4 rows" 4 (List.length r.Engine.rows);
  Alcotest.(check int) "2 cols" 2 (Schema.arity r.Engine.schema)

let test_aggregation () =
  let r =
    run_ok
      "select cust, count(*) as n, sum(amount) as total from orders group by cust"
  in
  Alcotest.(check int) "3 groups" 3 (List.length r.Engine.rows);
  let by_cust =
    List.map
      (fun row ->
        ( Value.to_int_exn (Tuple.get row 0),
          (Value.to_int_exn (Tuple.get row 1), Value.to_float_exn (Tuple.get row 2)) ))
      r.Engine.rows
  in
  Alcotest.(check bool) "cust 10" true (List.assoc 10 by_cust = (2, 12.));
  Alcotest.(check bool) "cust 20" true (List.assoc 20 by_cust = (1, 11.))

let test_global_aggregate () =
  let r = run_ok "select count(*), avg(amount) from orders" in
  match r.Engine.rows with
  | [ row ] ->
      Alcotest.(check int) "count 4" 4 (Value.to_int_exn (Tuple.get row 0));
      Alcotest.(check (float 1e-9)) "avg" 9. (Value.to_float_exn (Tuple.get row 1))
  | _ -> Alcotest.fail "expected one row"

let test_min_max_count_col () =
  let r = run_ok "select min(amount), max(amount), count(amount) from orders" in
  match r.Engine.rows with
  | [ row ] ->
      Alcotest.(check (float 0.)) "min" 5. (Value.to_float_exn (Tuple.get row 0));
      Alcotest.(check (float 0.)) "max" 13. (Value.to_float_exn (Tuple.get row 1));
      Alcotest.(check int) "count col" 4 (Value.to_int_exn (Tuple.get row 2))
  | _ -> Alcotest.fail "expected one row"

let test_limit () =
  let r = run_ok "select * from orders limit 2" in
  Alcotest.(check int) "2 rows" 2 (List.length r.Engine.rows)

let test_plain_sample () =
  let r = run_ok "select * from orders, customers where orders.cust = customers.cust sample 3" in
  Alcotest.(check int) "3 rows" 3 (List.length r.Engine.rows)

let test_strategy_sample () =
  let r =
    run_ok
      "select * from orders, customers where orders.cust = customers.cust sample 6 using stream"
  in
  Alcotest.(check int) "6 rows (WR)" 6 (List.length r.Engine.rows);
  (* Every sampled row is a genuine join row: cust columns match. *)
  List.iter
    (fun row ->
      Alcotest.(check bool) "join keys equal" true
        (Value.equal (Tuple.get row 1) (Tuple.get row 3)))
    r.Engine.rows

let test_strategy_sample_with_filter_pushdown () =
  let r =
    run_ok
      "select * from orders, customers where orders.cust = customers.cust and amount > 6 \
       sample 5 using fps"
  in
  Alcotest.(check int) "5 rows" 5 (List.length r.Engine.rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "filter applied below sampling" true
        (Value.to_float_exn (Tuple.get row 2) > 6.))
    r.Engine.rows

let test_sample_then_aggregate () =
  let r =
    run_ok
      "select count(*) from orders, customers where orders.cust = customers.cust sample 10 \
       using naive"
  in
  match r.Engine.rows with
  | [ row ] -> Alcotest.(check int) "aggregates the sample" 10 (Value.to_int_exn (Tuple.get row 0))
  | _ -> Alcotest.fail "one row expected"

let test_engine_errors () =
  let check_msg q fragment =
    let msg = run_err q in
    let contains needle haystack =
      let nl = String.length needle and hl = String.length haystack in
      let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (q ^ " -> " ^ msg) true (contains fragment msg)
  in
  check_msg "select * from nope" "unknown table";
  check_msg "select nope from orders" "unknown column";
  check_msg "select cust from orders, customers where orders.cust = customers.cust" "ambiguous";
  check_msg "select * from orders, customers" "no equi-join";
  check_msg "select oid, count(*) from orders" "GROUP BY";
  check_msg "select * from orders sample 5 using stream" "two tables";
  check_msg
    "select * from orders, customers where orders.cust = customers.cust sample 5 using bogus"
    "unknown sampling strategy";
  check_msg "select sum(*) from orders" "requires a column"

let test_explain_available () =
  let r = run_ok "select * from orders, customers where orders.cust = customers.cust" in
  let s = Format.asprintf "%a" Rsj_exec.Plan.explain r.Engine.plan in
  Alcotest.(check bool) "plan renders" true (String.length s > 0)

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Satellite: the unknown-strategy error enumerates every valid name,
   so the user can fix the query without reading the source. *)
let test_unknown_strategy_lists_names () =
  let msg =
    run_err
      "select * from orders, customers where orders.cust = customers.cust sample 5 using bogus"
  in
  Alcotest.(check bool) ("mentions the bad name: " ^ msg) true (contains "\"bogus\"" msg);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        ("lists " ^ Rsj_core.Strategy.name s)
        true
        (contains (Rsj_core.Strategy.name s) msg))
    Rsj_core.Strategy.all

(* SAMPLE without USING on the two-table equi-join shape routes
   through the cost-based picker: the decision is reported, and the
   rows are a genuine WR join sample. *)
let test_picker_routed_sample () =
  let r =
    run_ok "select * from orders, customers where orders.cust = customers.cust sample 3"
  in
  Alcotest.(check int) "3 rows" 3 (List.length r.Engine.rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "join keys equal" true
        (Value.equal (Tuple.get row 1) (Tuple.get row 3)))
    r.Engine.rows;
  match r.Engine.decision with
  | None -> Alcotest.fail "picker decision missing"
  | Some d ->
      Alcotest.(check string) "picker chose the cheapest feasible strategy"
        "Olken-Sample"
        (Rsj_core.Strategy.name d.Rsj_optimizer.Picker.chosen);
      let trace = Rsj_optimizer.Picker.to_string d in
      Alcotest.(check bool) "trace shows the reason" true (contains "cheapest" trace);
      Alcotest.(check bool) "trace lists candidates" true (contains "Naive-Sample" trace)

(* An explicit USING bypasses the picker: no decision is attached. *)
let test_named_strategy_skips_picker () =
  let r =
    run_ok
      "select * from orders, customers where orders.cust = customers.cust sample 4 using stream"
  in
  Alcotest.(check bool) "no picker decision" true (r.Engine.decision = None)

(* EXPLAIN plans (and, for picker-routed samples, decides) without
   executing. *)
let test_explain_query () =
  let q = parse_ok "explain select * from orders sample 2" in
  Alcotest.(check bool) "parser flags explain" true q.Ast.explain;
  let r =
    run_ok "explain select * from orders, customers where orders.cust = customers.cust sample 3"
  in
  Alcotest.(check bool) "explained" true r.Engine.explained;
  Alcotest.(check int) "no rows executed" 0 (List.length r.Engine.rows);
  Alcotest.(check bool) "decision still attached" true (r.Engine.decision <> None);
  let plain = run_ok "explain select * from orders" in
  Alcotest.(check bool) "single-table explain" true plain.Engine.explained;
  Alcotest.(check int) "no rows" 0 (List.length plain.Engine.rows)

let test_seed_reproducibility () =
  let q = "select * from orders, customers where orders.cust = customers.cust sample 4 using stream" in
  match (Engine.run ~seed:9 (catalog ()) q, Engine.run ~seed:9 (catalog ()) q) with
  | Ok a, Ok b ->
      List.iter2
        (fun x y -> Alcotest.(check bool) "same rows" true (Tuple.equal x y))
        a.Engine.rows b.Engine.rows
  | _ -> Alcotest.fail "queries failed"

let test_order_by () =
  let r = run_ok "select oid, amount from orders order by amount desc" in
  let amounts =
    List.map (fun t -> Value.to_float_exn (Tuple.get t 1)) r.Engine.rows
  in
  Alcotest.(check (list (float 0.))) "descending" [ 13.; 11.; 7.; 5. ] amounts;
  let r2 = run_ok "select oid from orders order by amount limit 2" in
  Alcotest.(check (list int)) "asc + limit" [ 1; 2 ]
    (List.map (fun t -> Value.to_int_exn (Tuple.get t 0)) r2.Engine.rows)

let test_order_by_aggregate_output () =
  let r =
    run_ok "select cust, sum(amount) as total from orders group by cust order by total desc"
  in
  let totals = List.map (fun t -> Value.to_float_exn (Tuple.get t 1)) r.Engine.rows in
  Alcotest.(check (list (float 1e-9))) "sorted by aggregate" [ 13.; 12.; 11. ] totals

let test_order_by_unknown_column () =
  let msg = run_err "select oid from orders order by nope" in
  Alcotest.(check bool) "mentions output" true (String.length msg > 0)

(* SAMPLE p% resolves against the exact join size before execution:
   |orders ⋈ customers| = 4, so 50% is ceil(2) = 2 rows, and a tiny
   fraction still draws the guaranteed minimum of one. *)
let test_engine_sample_fraction () =
  let r =
    run_ok
      "select * from orders, customers where orders.cust = customers.cust sample 50% using \
       stream"
  in
  Alcotest.(check int) "50% of |J|=4 is 2 rows" 2 (List.length r.Engine.rows);
  let r2 = run_ok "select * from orders, customers where orders.cust = customers.cust sample 5%" in
  Alcotest.(check int) "5% resolves to the minimum single row" 1 (List.length r2.Engine.rows);
  Alcotest.(check bool) "the fraction form still routes the picker" true
    (r2.Engine.decision <> None);
  let msg = run_err "select * from orders sample 50%" in
  Alcotest.(check bool) ("fraction needs the join shape: " ^ msg) true (contains "equi-join" msg)

(* The engine's auxiliary structures come from the shared warm cache:
   rerunning a query over the *same* relations rebuilds nothing, while
   fresh relations (new fingerprints) can never reuse stale entries. *)
let test_engine_warm_cache_reuse () =
  let module C = Rsj_cache.Structure_cache in
  let cache = C.shared () in
  let cat = catalog () in
  let q =
    "select * from orders, customers where orders.cust = customers.cust sample 50% using olken"
  in
  let run_q c =
    match Engine.run c q with Ok _ -> () | Error m -> Alcotest.failf "query failed: %s" m
  in
  let s0 = C.stats cache in
  run_q cat;
  let s1 = C.stats cache in
  Alcotest.(check bool) "first run pays the builds" true (s1.C.misses > s0.C.misses);
  run_q cat;
  let s2 = C.stats cache in
  Alcotest.(check int) "second run over the same relations builds nothing" s1.C.misses
    s2.C.misses;
  Alcotest.(check bool) "second run is served warm" true (s2.C.hits > s1.C.hits);
  run_q (catalog ());
  Alcotest.(check bool) "fresh relations miss (fingerprints differ)" true
    ((C.stats cache).C.misses > s2.C.misses)

(* A linear three-table chain with plain SAMPLE routes to the
   chain-walker: exactly r rows, both key pairs equal on every row, no
   picker decision (the walker is the only k>=3 strategy, so there is
   nothing to pick between), and the plan names the walk. *)
let test_chain_sample () =
  let r =
    run_ok
      "select * from orders, customers, regions where orders.cust = customers.cust and \
       customers.city = regions.city sample 5"
  in
  Alcotest.(check int) "5 rows" 5 (List.length r.Engine.rows);
  Alcotest.(check int) "arity 3+2+2" 7 (Schema.arity r.Engine.schema);
  List.iter
    (fun row ->
      Alcotest.(check bool) "cust keys equal" true
        (Value.equal (Tuple.get row 1) (Tuple.get row 3));
      Alcotest.(check bool) "city keys equal" true
        (Value.equal (Tuple.get row 4) (Tuple.get row 5)))
    r.Engine.rows;
  Alcotest.(check bool) "no picker decision on the chain path" true (r.Engine.decision = None);
  let s = Format.asprintf "%a" Rsj_exec.Plan.explain r.Engine.plan in
  Alcotest.(check bool) ("plan names the walker: " ^ s) true (contains "chain-walk" s)

(* SAMPLE p% on the chain resolves against the exact three-way join
   size: |orders ⋈ customers ⋈ regions| = 4 (orders 1,2 → oslo →
   north; order 3 → kyoto → {east,west}), so 50% is 2 rows. Constant
   predicates still push below the walk. *)
let test_chain_sample_fraction_and_filter () =
  let r =
    run_ok
      "select * from orders, customers, regions where orders.cust = customers.cust and \
       customers.city = regions.city sample 50%"
  in
  Alcotest.(check int) "50% of |J|=4 is 2 rows" 2 (List.length r.Engine.rows);
  let r2 =
    run_ok
      "select * from orders, customers, regions where orders.cust = customers.cust and \
       customers.city = regions.city and amount > 6 sample 4"
  in
  Alcotest.(check int) "4 rows" 4 (List.length r2.Engine.rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "filter pushed below the walk" true
        (Value.to_float_exn (Tuple.get row 2) > 6.))
    r2.Engine.rows

let suite =
  [
    Alcotest.test_case "tokenizer" `Quick test_tokenize;
    Alcotest.test_case "parse: the paper's query" `Quick test_parse_star_join;
    Alcotest.test_case "parse: sample clause" `Quick test_parse_sample_clause;
    Alcotest.test_case "parse: SAMPLE p%" `Quick test_parse_sample_fraction;
    Alcotest.test_case "parse: aggregates/group by/limit" `Quick test_parse_aggregates;
    Alcotest.test_case "parse: literals and operators" `Quick test_parse_literals_and_ops;
    Alcotest.test_case "parse: error cases" `Quick test_parse_errors;
    Alcotest.test_case "engine: single-table scan" `Quick test_single_table_scan;
    Alcotest.test_case "engine: projection + filter" `Quick test_projection_and_filter;
    Alcotest.test_case "engine: join" `Quick test_join;
    Alcotest.test_case "engine: aliases" `Quick test_join_with_alias;
    Alcotest.test_case "engine: group by" `Quick test_aggregation;
    Alcotest.test_case "engine: global aggregates" `Quick test_global_aggregate;
    Alcotest.test_case "engine: min/max/count(col)" `Quick test_min_max_count_col;
    Alcotest.test_case "engine: limit" `Quick test_limit;
    Alcotest.test_case "engine: SAMPLE n (picker-routed)" `Quick test_plain_sample;
    Alcotest.test_case "engine: unknown USING lists valid names" `Quick
      test_unknown_strategy_lists_names;
    Alcotest.test_case "engine: picker routes plain SAMPLE" `Quick test_picker_routed_sample;
    Alcotest.test_case "engine: USING bypasses picker" `Quick test_named_strategy_skips_picker;
    Alcotest.test_case "engine: EXPLAIN plans without executing" `Quick test_explain_query;
    Alcotest.test_case "engine: SAMPLE USING stream" `Quick test_strategy_sample;
    Alcotest.test_case "engine: filter pushdown below sampling" `Quick
      test_strategy_sample_with_filter_pushdown;
    Alcotest.test_case "engine: aggregate over a sample" `Quick test_sample_then_aggregate;
    Alcotest.test_case "engine: error messages" `Quick test_engine_errors;
    Alcotest.test_case "engine: explain" `Quick test_explain_available;
    Alcotest.test_case "engine: seeded reproducibility" `Quick test_seed_reproducibility;
    Alcotest.test_case "engine: order by" `Quick test_order_by;
    Alcotest.test_case "engine: order by aggregate alias" `Quick test_order_by_aggregate_output;
    Alcotest.test_case "engine: order by unknown column" `Quick test_order_by_unknown_column;
    Alcotest.test_case "engine: SAMPLE p% resolves against |J|" `Quick
      test_engine_sample_fraction;
    Alcotest.test_case "engine: warm cache reuse across runs" `Quick
      test_engine_warm_cache_reuse;
    Alcotest.test_case "engine: 3-table chain SAMPLE routes to the walker" `Quick
      test_chain_sample;
    Alcotest.test_case "engine: chain SAMPLE p% + filter pushdown" `Quick
      test_chain_sample_fraction_and_filter;
  ]

(* Property-based tests (qcheck) for the core invariants:
   sampler sizes and supports, semantics-conversion laws, stream
   combinator laws, statistics identities, parser totality. *)

open Rsj_relation
open Rsj_core
module Frequency = Rsj_stats.Frequency

let prng_of_int seed = Rsj_util.Prng.create ~seed:(abs seed + 1) ()

(* ---------- black boxes ---------- *)

let prop_u1_exact_size =
  QCheck.Test.make ~name:"u1 returns exactly r elements of the stream" ~count:300
    QCheck.(pair small_nat (int_bound 50))
    (fun (seed, r) ->
      let n = 60 in
      let rng = prng_of_int seed in
      let out = Stream0.to_list (Black_box.u1 rng ~n ~r (Stream0.of_list (List.init n Fun.id))) in
      List.length out = r && List.for_all (fun x -> x >= 0 && x < n) out)

let prop_u2_slots =
  QCheck.Test.make ~name:"u2 fills r slots from any non-empty stream" ~count:300
    QCheck.(pair small_nat (pair (int_range 1 40) (int_range 0 30)))
    (fun (seed, (n, r)) ->
      let rng = prng_of_int seed in
      let out = Black_box.u2 rng ~r (Stream0.of_list (List.init n Fun.id)) in
      Array.length out = r && Array.for_all (fun x -> x >= 0 && x < n) out)

let prop_wor_distinct =
  QCheck.Test.make ~name:"wor_sequential yields r distinct, ordered" ~count:300
    QCheck.(pair small_nat (int_bound 30))
    (fun (seed, r) ->
      let n = 30 + r in
      let rng = prng_of_int seed in
      let out =
        Stream0.to_list (Black_box.wor_sequential rng ~n ~r (Stream0.of_list (List.init n Fun.id)))
      in
      List.length out = r
      && List.sort_uniq compare out = out (* sorted + distinct = stream order *))

let prop_weighted_never_zero =
  QCheck.Test.make ~name:"weighted samplers never pick zero-weight elements" ~count:200
    QCheck.(pair small_nat (list_of_size (Gen.int_range 1 30) (int_bound 10)))
    (fun (seed, weights) ->
      QCheck.assume (List.exists (fun w -> w > 0) weights);
      let rng = prng_of_int seed in
      let items = List.mapi (fun i w -> (i, w)) weights in
      let weight (_, w) = float_of_int w in
      let out = Black_box.wr2 rng ~r:8 ~weight (Stream0.of_list items) in
      Array.for_all (fun (_, w) -> w > 0) out)

let prop_coin_flip_subset =
  QCheck.Test.make ~name:"coin_flip output is an ordered subset" ~count:200
    QCheck.(pair small_nat (float_bound_inclusive 1.))
    (fun (seed, f) ->
      let rng = prng_of_int seed in
      let input = List.init 50 Fun.id in
      let out = Stream0.to_list (Black_box.coin_flip rng ~f (Stream0.of_list input)) in
      List.sort_uniq compare out = out && List.for_all (fun x -> List.mem x input) out)

(* ---------- conversions ---------- *)

let prop_wr_to_wor_distinct =
  QCheck.Test.make ~name:"wr_to_wor yields distinct elements, bounded by r" ~count:300
    QCheck.(pair small_nat (list_of_size (Gen.int_range 0 30) (int_bound 8)))
    (fun (seed, sample) ->
      let rng = prng_of_int seed in
      let out = Convert.wr_to_wor rng ~r:5 (Array.of_list sample) in
      let l = Array.to_list out in
      List.length l <= 5 && List.sort_uniq compare l = List.sort compare l)

let prop_wor_to_wr_members =
  QCheck.Test.make ~name:"wor_to_wr draws only members" ~count:300
    QCheck.(pair small_nat (list_of_size (Gen.int_range 1 20) int))
    (fun (seed, sample) ->
      let rng = prng_of_int seed in
      let out = Convert.wor_to_wr rng ~r:12 (Array.of_list sample) in
      Array.length out = 12 && Array.for_all (fun x -> List.mem x sample) out)

(* Round trips across semantics (§3 observations 1–3): converting away
   and back must land on the contracted sample size. All randomness is
   derived from the generated seed, so every counterexample replays. *)

let prop_convert_wr_wor_wr_roundtrip =
  QCheck.Test.make ~name:"wor_to_wr (wr_to_wor s) restores exactly r members of s" ~count:300
    QCheck.(pair small_nat (pair (int_range 1 10) (int_range 1 50)))
    (fun (seed, (r, n)) ->
      let rng = prng_of_int seed in
      (* A WR sample over universe [0, n): 4r draws so that r distinct
         elements are usually available. *)
      let wr = Array.init (4 * r) (fun _ -> Rsj_util.Prng.int rng n) in
      let wor = Convert.wr_to_wor rng ~r wr in
      let back = Convert.wor_to_wr rng ~r wor in
      Array.length wor <= r
      && Array.length back = r
      && Array.for_all (fun x -> Array.exists (( = ) x) wor) back
      && Array.for_all (fun x -> Array.exists (( = ) x) wr) wor)

let prop_convert_cf_to_wor_size =
  QCheck.Test.make ~name:"cf_to_wor is exactly r members, or None when short" ~count:300
    QCheck.(pair small_nat (pair (int_range 0 15) (int_range 0 25)))
    (fun (seed, (r, n)) ->
      let rng = prng_of_int seed in
      let cf = Array.init n Fun.id in
      match Convert.cf_to_wor rng ~r cf with
      | Some out ->
          n >= r
          && Array.length out = r
          && List.sort_uniq compare (Array.to_list out) |> List.length = r
          && Array.for_all (fun x -> x >= 0 && x < n) out
      | None -> n < r)

let prop_convert_cf_oversample_preserves_size =
  QCheck.Test.make
    ~name:"cf oversample fraction yields >= f*n expected elements (and a usable WoR cut)"
    ~count:120
    QCheck.(pair small_nat (pair (int_range 40 200) (int_range 1 9)))
    (fun (seed, (n, f10)) ->
      let f = float_of_int f10 /. 20. in
      let rng = prng_of_int seed in
      let f' = Convert.cf_oversample_fraction ~f ~n ~failure_prob:1e-9 () in
      let r = int_of_float (Float.round (f *. float_of_int n)) in
      (* Simulate the inflated CF pass: per-element coin at f'. The
         Chernoff bound makes a short sample (None below) a
         1-in-1e9 event, far beyond what 120 seeded cases can hit. *)
      let cf =
        Array.to_list (Array.init n Fun.id)
        |> List.filter (fun _ -> Rsj_util.Prng.float rng 1. < f')
        |> Array.of_list
      in
      let expected_size = Semantics.expected_size Semantics.CF ~n ~f:f' in
      f' >= f && f' <= 1.
      && expected_size >= f *. float_of_int n
      &&
      match Convert.cf_to_wor rng ~r cf with
      | Some out -> Array.length out = r
      | None -> false)

(* ---------- streams ---------- *)

let prop_stream_map_compose =
  QCheck.Test.make ~name:"stream map fusion: map f (map g s) = map (f∘g) s" ~count:300
    QCheck.(list int)
    (fun l ->
      let f x = x * 2 and g x = x + 1 in
      let a = Stream0.to_list (Stream0.map f (Stream0.map g (Stream0.of_list l))) in
      let b = Stream0.to_list (Stream0.map (fun x -> f (g x)) (Stream0.of_list l)) in
      a = b)

let prop_stream_take_append =
  QCheck.Test.make ~name:"take n (append a b) = first n of a @ b" ~count:300
    QCheck.(triple (list int) (list int) small_nat)
    (fun (a, b, n) ->
      let got =
        Stream0.to_list (Stream0.take n (Stream0.append (Stream0.of_list a) (Stream0.of_list b)))
      in
      let want = List.filteri (fun i _ -> i < n) (a @ b) in
      got = want)

let prop_stream_filter_length =
  QCheck.Test.make ~name:"filter never grows a stream" ~count:300
    QCheck.(list int)
    (fun l ->
      Stream0.length (Stream0.filter (fun x -> x mod 3 = 0) (Stream0.of_list l))
      <= List.length l)

(* ---------- statistics ---------- *)

let freq_of_list l =
  let schema = Schema.of_list [ ("k", Value.T_int) ] in
  Frequency.of_relation
    (Relation.of_tuples schema (List.map (fun k -> [| Value.Int k |]) l))
    ~key:0

let prop_join_size_commutes =
  QCheck.Test.make ~name:"join_size is symmetric" ~count:200
    QCheck.(pair (list (int_bound 10)) (list (int_bound 10)))
    (fun (l1, l2) ->
      let m1 = freq_of_list l1 and m2 = freq_of_list l2 in
      Frequency.join_size m1 m2 = Frequency.join_size m2 m1)

let prop_join_size_bounds =
  QCheck.Test.make ~name:"0 <= |J| <= n1*n2" ~count:200
    QCheck.(pair (list (int_bound 6)) (list (int_bound 6)))
    (fun (l1, l2) ->
      let j = Frequency.join_size (freq_of_list l1) (freq_of_list l2) in
      j >= 0 && j <= List.length l1 * List.length l2)

let prop_end_biased_partition =
  QCheck.Test.make ~name:"end-biased histogram tracks exactly the >=threshold values" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 60) (int_bound 8)) (int_range 1 5))
    (fun (l, threshold) ->
      let f = freq_of_list l in
      let h = Rsj_stats.Histogram.End_biased.build f ~threshold in
      let ok = ref true in
      Frequency.iter f (fun v c ->
          let high = Rsj_stats.Histogram.End_biased.is_high h v in
          if high <> (c >= threshold) then ok := false);
      !ok)

let prop_binomial_support =
  QCheck.Test.make ~name:"binomial stays in [0, n]" ~count:500
    QCheck.(triple small_nat (int_bound 1000) (float_bound_inclusive 1.))
    (fun (seed, n, p) ->
      let rng = prng_of_int seed in
      let k = Rsj_util.Dist.binomial rng ~n ~p in
      k >= 0 && k <= n)

(* ---------- strategies on random instances ---------- *)

let random_env (seed, keys1, keys2) =
  let schema = Schema.of_list [ ("rid", Value.T_int); ("k", Value.T_int) ] in
  let mk name keys =
    Relation.of_tuples ~name schema (List.mapi (fun i k -> [| Value.Int i; Value.Int k |]) keys)
  in
  Strategy.make_env ~seed:(abs seed + 1) ~left:(mk "L" keys1) ~right:(mk "R" keys2) ~left_key:1
    ~right_key:1 ()

let prop_strategies_agree_on_membership =
  QCheck.Test.make ~name:"strategies emit only join tuples on random instances" ~count:60
    QCheck.(
      triple small_nat
        (list_of_size (Gen.int_range 1 15) (int_bound 5))
        (list_of_size (Gen.int_range 1 25) (int_bound 5)))
    (fun ((_, keys1, keys2) as input) ->
      let env = random_env input in
      let n = Strategy.env_join_size env in
      let members = Hashtbl.create 64 in
      List.iteri
        (fun i k1 ->
          List.iteri
            (fun j k2 ->
              if k1 = k2 then
                Hashtbl.replace members
                  [| Value.Int i; Value.Int k1; Value.Int j; Value.Int k2 |]
                  ())
            keys2)
        keys1;
      List.for_all
        (fun s ->
          match Strategy.run env s ~r:6 with
          | result ->
              (if n = 0 then Array.length result.Strategy.sample = 0
               else
                 Array.length result.Strategy.sample = 6
                 && Array.for_all (fun t -> Hashtbl.mem members t) result.Strategy.sample)
          | exception Failure _ -> s = Strategy.Olken && n = 0)
        [ Strategy.Naive; Strategy.Stream; Strategy.Group; Strategy.Frequency_partition;
          Strategy.Count_sample; Strategy.Hybrid_count ])

(* ---------- parser ---------- *)

let prop_parser_total =
  QCheck.Test.make ~name:"parser never raises on arbitrary strings" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 60))
    (fun s ->
      match Rsj_sql.Parser.parse s with Ok _ | Error _ -> true)

let prop_parser_roundtrip =
  QCheck.Test.make ~name:"pp_query output re-parses" ~count:200
    QCheck.(pair (int_range 1 3) (int_range 0 2))
    (fun (ntables, nconds) ->
      let from = List.init ntables (fun i -> (Printf.sprintf "t%d" i, None)) in
      let where =
        List.init nconds (fun i ->
            {
              Rsj_sql.Ast.left = { Rsj_sql.Ast.table = Some "t0"; name = Printf.sprintf "c%d" i };
              cmp = Rsj_sql.Ast.Eq;
              right = Rsj_sql.Ast.O_lit (Rsj_sql.Ast.L_int i);
            })
      in
      let q =
        {
          Rsj_sql.Ast.explain = false;
          select = [ Rsj_sql.Ast.S_star ];
          from;
          where;
          group_by = [];
          order_by = [];
          sample = Some { Rsj_sql.Ast.size = Rsj_sql.Ast.Abs 5; strategy = Some "stream" };
          limit = Some 3;
        }
      in
      let printed = Format.asprintf "%a" Rsj_sql.Ast.pp_query q in
      match Rsj_sql.Parser.parse printed with
      | Ok q2 -> q2 = q
      | Error e -> QCheck.Test.fail_report (printed ^ " -> " ^ e))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_u1_exact_size;
      prop_u2_slots;
      prop_wor_distinct;
      prop_weighted_never_zero;
      prop_coin_flip_subset;
      prop_wr_to_wor_distinct;
      prop_wor_to_wr_members;
      prop_convert_wr_wor_wr_roundtrip;
      prop_convert_cf_to_wor_size;
      prop_convert_cf_oversample_preserves_size;
      prop_stream_map_compose;
      prop_stream_take_append;
      prop_stream_filter_length;
      prop_join_size_commutes;
      prop_join_size_bounds;
      prop_end_biased_partition;
      prop_binomial_support;
      prop_strategies_agree_on_membership;
      prop_parser_total;
      prop_parser_roundtrip;
    ]

let () =
  Alcotest.run "rsj"
    [
      ("prng", Test_prng.suite);
      ("dist", Test_dist.suite);
      ("stats_math", Test_stats_math.suite);
      ("value", Test_value.suite);
      ("schema", Test_schema.suite);
      ("stream", Test_stream.suite);
      ("relation", Test_relation.suite);
      ("index", Test_index.suite);
      ("stats", Test_stats.suite);
      ("exec", Test_exec.suite);
      ("obs", Test_obs.suite);
      ("obs_artifacts", Test_obs.artifacts_suite);
      ("black_box", Test_black_box.suite);
      ("convert", Test_convert.suite);
      ("strategies", Test_strategies.suite);
      ("parallel", Test_parallel.suite);
      ("pool", Test_pool.suite);
      ("dataplane", Test_dataplane.suite);
      ("conformance", Test_conformance.suite);
      ("join_tree", Test_join_tree.suite);
      ("negative", Test_negative.suite);
      ("aqp", Test_aqp.suite);
      ("workload", Test_workload.suite);
      ("sample_op", Test_sample_op.suite);
      ("harness", Test_harness.suite);
      ("sql", Test_sql.suite);
      ("aggregate", Test_aggregate.suite);
      ("paged", Test_paged.suite);
      ("properties", Test_properties.suite);
      ("online_agg", Test_online_agg.suite);
      ("storage", Test_storage.suite);
      ("join_estimate", Test_join_estimate.suite);
      ("storage_properties", Test_storage_properties.suite);
    ]

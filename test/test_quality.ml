(* The online statistical-quality monitor (lib/verify/online.ml).

   Unit cells drive the monitor directly with draws from the WR
   join-value marginal: an unbiased stream must stay green across an
   RSJ_CONF_TRIALS-scaled number of windows (the alpha-spending
   schedule bounds the lifetime false-alert budget), the conformance
   suite's negative control (Negative.biased_wr_draw) must trip it
   fast, and a value outside the join support must alert immediately.

   Served cells repeat the verdicts through the daemon: a server
   started with RSJ_SERVE_BIAS=1 replaces every sample with the biased
   draw, and its own monitor must latch quality_alert in the stats RPC
   within a bounded number of requests, while an unbiased daemon under
   the same load holds the alert at false. *)

open Rsj_relation
module Online = Rsj_verify.Online
module Frequency = Rsj_stats.Frequency
module Oracle = Rsj_verify.Oracle
module Zipf_tables = Rsj_workload.Zipf_tables
module Client = Rsj_server.Client
module Json = Rsj_obs.Json
module Prng = Rsj_util.Prng

let key = Zipf_tables.col2

let trials () =
  match Sys.getenv_opt "RSJ_CONF_TRIALS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with Some v when v > 0 -> v | _ -> 60)
  | None -> 60

let law_and_universe pair =
  let left = Frequency.of_relation pair.Zipf_tables.outer ~key in
  let right = Frequency.of_relation pair.Zipf_tables.inner ~key in
  let law =
    match Online.law_of_frequencies ~left ~right with
    | Some law -> law
    | None -> Alcotest.fail "zipf pair produced an empty join"
  in
  let oracle =
    Oracle.of_relations ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner
      ~left_key:key ~right_key:key
  in
  (law, Oracle.universe oracle)

(* ---------- unit cells: the monitor against known streams ---------- *)

(* False-positive side: feed genuinely uniform WR draws over the join
   and close window after window — the latched alert must never fire.
   Window count scales with RSJ_CONF_TRIALS like the conformance
   sweep; the alpha-spending schedule keeps the lifetime false-alert
   probability under the 1% significance no matter how long it runs. *)
let test_unbiased_stays_green () =
  let pair = Test_serve.make_pair () in
  let law, universe = law_and_universe pair in
  Alcotest.(check int)
    "the law's support is the universe's" (Online.support_size law)
    (Array.length
       (Array.of_seq
          (Hashtbl.to_seq_keys
             (let t = Hashtbl.create 32 in
              Array.iter (fun tu -> Hashtbl.replace t tu.(key) ()) universe;
              t))));
  let w = 400 in
  let monitor = Online.create ~window:w ~significance:0.01 () in
  let rng = Prng.create ~seed:0x5EED () in
  let windows = max 8 (trials () / 8) in
  let n = Array.length universe in
  for _ = 1 to windows do
    let vals = Array.init w (fun _ -> universe.(Prng.int rng n).(key)) in
    Online.observe monitor ~key:"unit/stream/wr" ~law vals
  done;
  Alcotest.(check bool)
    (Printf.sprintf "unbiased stream green after %d windows" windows)
    false (Online.any_alert monitor);
  match Online.stats monitor with
  | [ st ] ->
      Alcotest.(check int) "all windows closed" windows st.Online.st_windows;
      Alcotest.(check int) "no foreign values" 0 st.Online.st_foreign;
      Alcotest.(check bool) "p-value recorded" false (Float.is_nan st.Online.st_last_p)
  | l -> Alcotest.failf "expected one stream, saw %d" (List.length l)

(* True-positive side: the conformance suite's negative control (first
   half of the universe carries 4x the mass) must trip the monitor —
   a monitor that tolerates it has no power. The universe is sorted by
   join value first, exactly as the biased daemon does: the control's
   tilt is positional, and only a value-aligned layout turns it into
   the marginal distortion the monitor watches. *)
let test_biased_trips () =
  let pair = Test_serve.make_pair () in
  let law, universe = law_and_universe pair in
  let universe = Array.copy universe in
  Array.sort (fun a b -> Value.compare a.(key) b.(key)) universe;
  let w = 400 in
  let monitor = Online.create ~window:w ~significance:0.01 () in
  let rng = Prng.create ~seed:0xB1A5 () in
  let r = 50 in
  let max_batches = 64 in
  let batches = ref 0 in
  while (not (Online.any_alert monitor)) && !batches < max_batches do
    incr batches;
    let sample = Rsj_core.Negative.biased_wr_draw rng ~universe ~r in
    Online.observe monitor ~key:"unit/stream/biased" ~law
      (Array.map (fun t -> t.(key)) sample)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "biased stream tripped after %d draws" (!batches * r))
    true (Online.any_alert monitor);
  (* 4:1 over half the mass is gross — it must not take more than a
     couple of windows to catch. *)
  Alcotest.(check bool)
    (Printf.sprintf "caught within three windows (%d draws)" (3 * w))
    true
    (!batches * r <= 3 * w)

(* A served tuple whose join value is outside the join support is
   wrong with probability 1 — no window, no test, immediate alert. *)
let test_foreign_value_alerts () =
  let pair = Test_serve.make_pair () in
  let law, _ = law_and_universe pair in
  let monitor = Online.create ~window:100_000 ~significance:0.01 () in
  Online.observe monitor ~key:"unit/stream/foreign" ~law [| Value.Int 987_654_321 |];
  Alcotest.(check bool) "foreign value alerts immediately" true (Online.any_alert monitor);
  match Online.stats monitor with
  | [ st ] -> Alcotest.(check int) "counted as foreign" 1 st.Online.st_foreign
  | l -> Alcotest.failf "expected one stream, saw %d" (List.length l)

(* ---------- served cells: the daemon's own verdict ---------- *)

let quality_alert stats =
  match List.assoc_opt "quality_alert" stats with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail "stats carry no quality_alert"

let quality_streams stats =
  match List.assoc_opt "quality" stats with
  | Some (Json.List l) -> l
  | _ -> Alcotest.fail "stats carry no quality stream list"

let drive client ~requests ~r =
  for k = 1 to requests do
    ignore
      (Test_serve.must_reply "served sample"
         (Client.sample client ~left:"t1" ~right:"t2" ~r ~strategy:"stream"
            ~seed:(1000 + k) ()))
  done

let with_quality_env ?(bias = false) f =
  Unix.putenv "RSJ_QUALITY_WINDOW" "200";
  if bias then Unix.putenv "RSJ_SERVE_BIAS" "1";
  Fun.protect ~finally:(fun () ->
      Unix.putenv "RSJ_QUALITY_WINDOW" "";
      if bias then Unix.putenv "RSJ_SERVE_BIAS" "")
  @@ f

let test_served_unbiased_green () =
  with_quality_env @@ fun () ->
  let pair = Test_serve.make_pair () in
  Test_serve.with_server @@ fun ~sock:_ ~snapshot:_ client ->
  Test_serve.register_pair client pair;
  (* 12 requests x 50 draws = 600 observations = 3 closed windows. *)
  drive client ~requests:12 ~r:50;
  let stats = Test_serve.must "stats" (Client.cache_stats client) in
  Alcotest.(check bool) "unbiased daemon stays green" false (quality_alert stats);
  match quality_streams stats with
  | s :: _ -> (
      match Json.member "windows" s with
      | Some (Json.Int w) ->
          Alcotest.(check bool)
            (Printf.sprintf "the daemon closed windows (%d)" w)
            true (w >= 2)
      | _ -> Alcotest.fail "stream stats carry no window count")
  | [] -> Alcotest.fail "the daemon tracked no quality stream"

let test_served_biased_alerts () =
  with_quality_env ~bias:true @@ fun () ->
  let pair = Test_serve.make_pair () in
  Test_serve.with_server @@ fun ~sock:_ ~snapshot:_ client ->
  Test_serve.register_pair client pair;
  drive client ~requests:12 ~r:50;
  let stats = Test_serve.must "stats" (Client.cache_stats client) in
  Alcotest.(check bool) "biased daemon latches the alert" true (quality_alert stats);
  let alerted =
    List.exists
      (fun s -> match Json.member "alert" s with Some (Json.Bool b) -> b | _ -> false)
      (quality_streams stats)
  in
  Alcotest.(check bool) "a per-stream alert is latched too" true alerted

let suite =
  [
    Alcotest.test_case "unbiased stream stays green (FP cell)" `Slow
      test_unbiased_stays_green;
    Alcotest.test_case "the negative control trips the monitor (TP cell)" `Quick
      test_biased_trips;
    Alcotest.test_case "foreign join values alert immediately" `Quick
      test_foreign_value_alerts;
    Alcotest.test_case "served: unbiased daemon holds the alert at 0" `Quick
      test_served_unbiased_green;
    Alcotest.test_case "served: RSJ_SERVE_BIAS trips rsj_quality_alert" `Quick
      test_served_biased_alerts;
  ]

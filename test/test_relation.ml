open Rsj_relation

let schema = Schema.of_list [ ("id", Value.T_int); ("name", Value.T_str) ]
let row i name = [| Value.Int i; Value.str name |]

let sample () =
  Relation.of_tuples ~name:"people" schema [ row 1 "ann"; row 2 "bob"; row 3 "cat" ]

let test_build_and_read () =
  let r = sample () in
  Alcotest.(check int) "cardinality" 3 (Relation.cardinality r);
  Alcotest.(check string) "name" "people" (Relation.name r);
  Alcotest.(check bool) "get 0" true (Tuple.equal (Relation.get r 0) (row 1 "ann"));
  Alcotest.(check bool) "get 2" true (Tuple.equal (Relation.get r 2) (row 3 "cat"))

let test_get_bounds () =
  let r = sample () in
  let raises i =
    try
      ignore (Relation.get r i);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative" true (raises (-1));
  Alcotest.(check bool) "past end" true (raises 3)

let test_append_validates () =
  let r = Relation.create schema in
  Relation.append r (row 1 "x");
  Alcotest.(check bool) "bad arity rejected" true
    (try
       Relation.append r [| Value.Int 1 |];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad type rejected" true
    (try
       Relation.append r [| Value.str "no"; Value.str "x" |];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "failed appends don't grow" 1 (Relation.cardinality r)

let test_growth () =
  let r = Relation.create ~capacity:1 schema in
  for i = 1 to 1000 do
    Relation.append r (row i "n")
  done;
  Alcotest.(check int) "grew" 1000 (Relation.cardinality r);
  Alcotest.(check int) "spot check" 500 (Value.to_int_exn (Tuple.get (Relation.get r 499) 0))

let test_iteration () =
  let r = sample () in
  let ids = ref [] in
  Relation.iter r (fun t -> ids := Value.to_int_exn (Tuple.get t 0) :: !ids);
  Alcotest.(check (list int)) "iter order" [ 3; 2; 1 ] !ids;
  let idx = ref [] in
  Relation.iteri r (fun i _ -> idx := i :: !idx);
  Alcotest.(check (list int)) "iteri indexes" [ 2; 1; 0 ] !idx;
  Alcotest.(check int) "fold count" 3 (Relation.fold r ~init:0 ~f:(fun acc _ -> acc + 1))

let test_to_stream_matches () =
  let r = sample () in
  let via_stream = Stream0.to_list (Relation.to_stream r) in
  Alcotest.(check int) "same length" 3 (List.length via_stream);
  List.iteri
    (fun i t -> Alcotest.(check bool) "same rows" true (Tuple.equal t (Relation.get r i)))
    via_stream

let test_random_row () =
  let r = sample () in
  let rng = Rsj_util.Prng.create ~seed:1 () in
  for _ = 1 to 50 do
    let t = Relation.random_row r rng in
    let id = Value.to_int_exn (Tuple.get t 0) in
    Alcotest.(check bool) "row of relation" true (id >= 1 && id <= 3)
  done;
  let empty = Relation.create schema in
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Relation.random_row empty rng);
       false
     with Invalid_argument _ -> true)

let test_column_view () =
  (* Column.int_view is the data plane's replacement for the boxed
     Relation.column_values extraction (deprecated in hot paths). *)
  let r = sample () in
  (match Column.int_view r ~col:0 with
  | Some ids -> Alcotest.(check (array int)) "ids" [| 1; 2; 3 |] ids
  | None -> Alcotest.fail "int column should be viewable");
  Alcotest.(check bool) "string column escapes to boxed" true (Column.int_view r ~col:1 = None)

let test_to_array_is_copy () =
  let r = sample () in
  let a = Relation.to_array r in
  a.(0) <- row 99 "zz";
  Alcotest.(check int) "relation untouched" 1 (Value.to_int_exn (Tuple.get (Relation.get r 0) 0))

let test_csv_roundtrip () =
  let r = sample () in
  let path = Filename.temp_file "rsj_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.save ~path r;
      let back = Csv_io.load ~path schema in
      Alcotest.(check int) "same cardinality" 3 (Relation.cardinality back);
      Relation.iteri back (fun i t ->
          Alcotest.(check bool) "same rows" true (Tuple.equal t (Relation.get r i))))

let test_csv_null_and_quoting () =
  let s = Schema.of_list [ ("a", Value.T_int); ("b", Value.T_str) ] in
  let r =
    Relation.of_tuples s
      [
        [| Value.Null; Value.str "has,comma" |];
        [| Value.Int 2; Value.str "has\"quote" |];
        [| Value.Int 3; Value.Null |];
        [| Value.Int 4; Value.str "" |];
      ]
  in
  let path = Filename.temp_file "rsj_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.save ~path r;
      let back = Csv_io.load ~path s in
      Alcotest.(check int) "4 rows" 4 (Relation.cardinality back);
      Alcotest.(check bool) "null int survived" true (Value.is_null (Tuple.get (Relation.get back 0) 0));
      Alcotest.(check string) "comma survived" "has,comma"
        (Value.to_str_exn (Tuple.get (Relation.get back 0) 1));
      Alcotest.(check string) "quote survived" "has\"quote"
        (Value.to_str_exn (Tuple.get (Relation.get back 1) 1));
      Alcotest.(check bool) "null str survived" true (Value.is_null (Tuple.get (Relation.get back 2) 1));
      Alcotest.(check string) "empty string distinct from null" ""
        (Value.to_str_exn (Tuple.get (Relation.get back 3) 1)))

let test_csv_rejects_bad_header () =
  let r = sample () in
  let path = Filename.temp_file "rsj_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.save ~path r;
      let other = Schema.of_list [ ("x", Value.T_int); ("name", Value.T_str) ] in
      Alcotest.(check bool) "header mismatch fails" true
        (try
           ignore (Csv_io.load ~path other);
           false
         with Failure _ -> true))

let test_csv_parse_line () =
  Alcotest.(check (list string)) "plain" [ "a"; "b" ] (Csv_io.parse_line "a,b");
  Alcotest.(check (list string)) "quoted comma" [ "a,b"; "c" ] (Csv_io.parse_line "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "a\"b" ] (Csv_io.parse_line "\"a\"\"b\"")

(* The manual digit loop must agree with int_of_string_opt on every
   spelling — fast-path decimals, fallback shapes, and the overflow
   boundary. *)
let test_csv_parse_int () =
  let io = Alcotest.(option int) in
  let agree s = Alcotest.(check io) ("agrees on " ^ s) (int_of_string_opt s) (Csv_io.parse_int s) in
  List.iter agree
    [
      "0"; "7"; "-7"; "+5"; "007"; "-007"; "";
      "-"; "+"; "x"; "1x"; "-1x"; " 1"; "1 ";
      string_of_int max_int; string_of_int min_int;
      (* one past the boundary in each direction *)
      "4611686018427387904"; "-4611686018427387905";
      "99999999999999999999999999"; "-99999999999999999999999999";
      (* fallback-only spellings int_of_string accepts *)
      "1_000"; "0x10"; "0o17"; "0b101"; "-0x10";
    ];
  Alcotest.(check io) "negative" (Some (-123)) (Csv_io.parse_int "-123");
  Alcotest.(check io) "leading zeros" (Some 42) (Csv_io.parse_int "042");
  Alcotest.(check io) "explicit plus" (Some 5) (Csv_io.parse_int "+5");
  Alcotest.(check io) "min_int exact" (Some min_int) (Csv_io.parse_int (string_of_int min_int));
  Alcotest.(check io) "overflow is None" None (Csv_io.parse_int "4611686018427387904")

let test_csv_int_roundtrip_extremes () =
  let s = Schema.of_list [ ("a", Value.T_int); ("b", Value.T_int) ] in
  let r =
    Relation.of_tuples s
      [
        [| Value.Int max_int; Value.Int 1 |];
        [| Value.Int min_int; Value.Int 2 |];
        [| Value.Int 0; Value.Int (-1) |];
        [| Value.Null; Value.Int 4 |];
        [| Value.Int 5; Value.Null |];
      ]
  in
  let path = Filename.temp_file "rsj_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.save ~path r;
      let back = Csv_io.load ~path s in
      Alcotest.(check int) "5 rows" 5 (Relation.cardinality back);
      Relation.iteri back (fun i t ->
          Alcotest.(check bool)
            (Printf.sprintf "row %d survives" i)
            true
            (Tuple.equal t (Relation.get r i))))

let test_tuple_ops () =
  let t = Tuple.of_ints [ 1; 2; 3 ] in
  Alcotest.(check int) "arity" 3 (Tuple.arity t);
  Alcotest.(check int) "attr" 2 (Value.to_int_exn (Tuple.attr t 1));
  let j = Tuple.join (Tuple.of_ints [ 1 ]) (Tuple.of_ints [ 2; 3 ]) in
  Alcotest.(check int) "join arity" 3 (Tuple.arity j);
  let p = Tuple.project t [ 2; 0 ] in
  Alcotest.(check int) "project reorders" 3 (Value.to_int_exn (Tuple.get p 0));
  Alcotest.(check bool) "equal" true (Tuple.equal t (Tuple.of_ints [ 1; 2; 3 ]));
  Alcotest.(check bool) "compare lexicographic" true
    (Tuple.compare (Tuple.of_ints [ 1; 2 ]) (Tuple.of_ints [ 1; 3 ]) < 0);
  Alcotest.(check bool) "prefix shorter is smaller" true
    (Tuple.compare (Tuple.of_ints [ 1 ]) (Tuple.of_ints [ 1; 0 ]) < 0);
  Alcotest.(check int) "hash equal tuples" (Tuple.hash t) (Tuple.hash (Tuple.of_ints [ 1; 2; 3 ]));
  Alcotest.(check bool) "get bounds" true
    (try
       ignore (Tuple.get t 9);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "build and read" `Quick test_build_and_read;
    Alcotest.test_case "get bounds checked" `Quick test_get_bounds;
    Alcotest.test_case "append validates" `Quick test_append_validates;
    Alcotest.test_case "storage growth" `Quick test_growth;
    Alcotest.test_case "iteration" `Quick test_iteration;
    Alcotest.test_case "to_stream matches contents" `Quick test_to_stream_matches;
    Alcotest.test_case "random_row" `Quick test_random_row;
    Alcotest.test_case "column int view" `Quick test_column_view;
    Alcotest.test_case "to_array is a copy" `Quick test_to_array_is_copy;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv null and quoting" `Quick test_csv_null_and_quoting;
    Alcotest.test_case "csv rejects bad header" `Quick test_csv_rejects_bad_header;
    Alcotest.test_case "csv parse_line" `Quick test_csv_parse_line;
    Alcotest.test_case "csv parse_int agrees with int_of_string" `Quick test_csv_parse_int;
    Alcotest.test_case "csv int roundtrip at the extremes" `Quick test_csv_int_roundtrip_extremes;
    Alcotest.test_case "tuple operations" `Quick test_tuple_ops;
  ]

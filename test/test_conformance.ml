(* The statistical conformance subsystem: oracle exactness, kernel
   policy mechanics, per-strategy distribution gates (including the
   strategies the parallel suite cannot cover), the 3-relation chain
   walker, and the end-to-end matrix runner with its negative
   control. *)

open Rsj_relation
open Rsj_core
module Kernel = Rsj_verify.Kernel
module Oracle = Rsj_verify.Oracle
module Conformance = Rsj_verify.Conformance
module Zipf_tables = Rsj_workload.Zipf_tables
module Chain_sample = Rsj_core.Chain_sample
module Prng = Rsj_util.Prng
module Stats_math = Rsj_util.Stats_math

let small_pair ?(seed = 0xAB) ~z1 ~z2 () =
  Zipf_tables.make_pair ~seed ~n1:40 ~n2:80 ~z1 ~z2 ~domain:6 ()

let env_of ?(seed = 0xAB) (pair : Zipf_tables.pair) =
  Strategy.make_env ~seed ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
    ~right_key:Zipf_tables.col2 ()

(* ------------------------------------------------------------------ *)
(* Kernel mechanics                                                    *)

let test_bucket_preserves_totals () =
  let expected = Array.make 20 1.2 in
  let observed = Array.init 20 (fun i -> i mod 3) in
  let be, bo = Kernel.bucket ~min_expected:5. ~expected ~observed in
  Alcotest.(check (float 1e-9))
    "expected total preserved" (Array.fold_left ( +. ) 0. expected)
    (Array.fold_left ( +. ) 0. be);
  Alcotest.(check int) "observed total preserved"
    (Array.fold_left ( + ) 0 observed)
    (Array.fold_left ( + ) 0 bo);
  Alcotest.(check int) "same shape" (Array.length be) (Array.length bo);
  Array.iter
    (fun e -> Alcotest.(check bool) "every bucket reaches the floor" true (e >= 5.))
    be

let test_bucket_underfull_collapses () =
  let be, bo = Kernel.bucket ~min_expected:5. ~expected:[| 0.5; 0.5; 0.5 |] ~observed:[| 1; 0; 2 |] in
  Alcotest.(check int) "single bucket" 1 (Array.length be);
  Alcotest.(check (float 1e-9)) "expected mass" 1.5 be.(0);
  Alcotest.(check int) "observed mass" 3 bo.(0)

let test_kernel_retry_policy () =
  let config = { Kernel.default with retries = 2 } in
  (* Rejects twice, passes on the third seeded attempt. *)
  let o =
    Kernel.run_custom config ~name:"scripted" ~attempt:(fun ~attempt ->
        if attempt < 2 then (99., 1, 1e-12) else (0.1, 1, 0.9))
  in
  Alcotest.(check bool) "eventually passes" true o.Kernel.passed;
  Alcotest.(check int) "used all attempts" 3 o.Kernel.attempts;
  (* Rejects every time: failed, attempts exhausted. *)
  let o = Kernel.run_custom config ~name:"scripted" ~attempt:(fun ~attempt:_ -> (99., 1, 1e-12)) in
  Alcotest.(check bool) "persistent rejection fails" false o.Kernel.passed;
  Alcotest.(check int) "attempts exhausted" 3 o.Kernel.attempts;
  (* Passes immediately: one attempt only. *)
  let o = Kernel.run_custom config ~name:"scripted" ~attempt:(fun ~attempt:_ -> (0.1, 1, 0.9)) in
  Alcotest.(check int) "stops at first pass" 1 o.Kernel.attempts

let test_kernel_threshold () =
  let t = Kernel.threshold { Kernel.default with significance = 0.05; comparisons = 50 } in
  Alcotest.(check (float 1e-12)) "Bonferroni division" 0.001 t;
  Alcotest.(check bool) "bad significance rejected" true
    (try
       ignore (Kernel.threshold { Kernel.default with significance = 1.5 });
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad comparisons rejected" true
    (try
       ignore (Kernel.threshold { Kernel.default with comparisons = 0 });
       false
     with Invalid_argument _ -> true)

let test_kernel_g_vs_chi_agree () =
  (* On the same healthy uniform data both tests accept; on grossly
     biased data both reject. *)
  let expected = Array.make 10 50. in
  let uniform = Array.init 10 (fun i -> 48 + (i mod 3)) in
  let biased = Array.init 10 (fun i -> if i = 0 then 300 else 22) in
  let config = Kernel.default in
  List.iter
    (fun test ->
      let ok = Kernel.goodness_of_fit config test ~expected ~observed:uniform in
      Alcotest.(check bool)
        (Kernel.test_name test ^ " accepts uniform")
        true
        (ok.Stats_math.p_value > 0.01);
      let bad = Kernel.goodness_of_fit config test ~expected ~observed:biased in
      Alcotest.(check bool)
        (Kernel.test_name test ^ " rejects bias")
        true
        (bad.Stats_math.p_value < 1e-6))
    [ Kernel.Chi_square; Kernel.G_test ]

(* ------------------------------------------------------------------ *)
(* Oracle exactness                                                    *)

let test_oracle_matches_plan () =
  let pair = small_pair ~z1:1. ~z2:2. () in
  let oracle = Oracle.of_env (env_of pair) in
  Alcotest.(check int) "size = exact |J|" (Zipf_tables.join_size pair) (Oracle.size oracle);
  let universe = Oracle.universe oracle in
  Array.iteri
    (fun i t ->
      Alcotest.(check (option int)) "cell lookup is the index" (Some i) (Oracle.cell oracle t))
    universe;
  let counts = Oracle.counter oracle in
  Array.iter (Oracle.observe oracle counts) universe;
  Array.iter (fun c -> Alcotest.(check int) "each tuple lands in its cell" 1 c) counts;
  Alcotest.(check bool) "non-join tuple rejected" true
    (try
       Oracle.observe oracle counts (Tuple.of_ints [ 999; 999 ]);
       false
     with Invalid_argument _ -> true)

let test_oracle_expected_laws () =
  let pair = small_pair ~z1:0. ~z2:0. () in
  let oracle = Oracle.of_env (env_of pair) in
  let n = Oracle.size oracle in
  let sum a = Array.fold_left ( +. ) 0. a in
  Alcotest.(check (float 1e-6)) "WR expectations sum to draws" 1000.
    (sum (Oracle.wr_expected oracle ~draws:1000));
  (* r >= |J|: every tuple is included in every trial. *)
  let wor = Oracle.wor_expected oracle ~trials:50 ~r:(n + 10) in
  Array.iter (fun e -> Alcotest.(check (float 1e-9)) "saturated WoR inclusion" 50. e) wor;
  Alcotest.(check (float 1e-9)) "WoR marginal" (float_of_int (min 7 n) /. float_of_int n)
    (Oracle.wor_inclusion oracle ~r:7);
  Alcotest.(check (float 1e-6)) "CF expectations sum to trials*f*n"
    (100. *. 0.25 *. float_of_int n)
    (sum (Oracle.cf_expected oracle ~trials:100 ~f:0.25));
  Alcotest.(check bool) "CF rejects f > 1" true
    (try
       ignore (Oracle.cf_expected oracle ~trials:1 ~f:1.5);
       false
     with Invalid_argument _ -> true)

let chain_spec ?(seed = 0xC4A1) ~z () =
  let mk i rows =
    Zipf_tables.make ~seed:(seed + (31 * i)) ~name:(Printf.sprintf "c%d" i) ~rows ~z ~domain:5 ()
  in
  {
    Chain_sample.relations = [| mk 0 24; mk 1 30; mk 2 36 |];
    join_keys = [| (Zipf_tables.col2, Zipf_tables.col2); (Zipf_tables.col2, Zipf_tables.col2) |];
  }

let test_oracle_chain_matches_walker () =
  let spec = chain_spec ~z:1. () in
  let oracle = Oracle.of_chain spec in
  let prepared = Chain_sample.prepare spec in
  Alcotest.(check (float 0.5)) "chain |J| agrees with the weight tables"
    (Chain_sample.join_size prepared)
    (float_of_int (Oracle.size oracle));
  (* Every walker draw is a member of the enumerated universe. *)
  let rng = Prng.create ~seed:11 () in
  let sample = Chain_sample.sample prepared rng ~r:100 () in
  let counts = Oracle.counter oracle in
  Array.iter (Oracle.observe oracle counts) sample
(* observe raises if any draw is outside the enumerated chain join *)

(* The standalone per-strategy and chain-walker gates that used to live
   here are promoted into the matrix runner itself: every strategy now
   runs through Rsj_parallel.run in the cells (including the four
   newly-parallel ones at domains 2 and 4), and Conformance.run grows
   chain rows at two skews. The mini-run below and the full sweep
   under @conformance exercise both. *)

(* ------------------------------------------------------------------ *)
(* Negative control: the kernel must have power, not just tolerance.   *)

let test_biased_sampler_rejected () =
  let pair = small_pair ~z1:1. ~z2:2. () in
  let universe = Oracle.universe (Oracle.of_env (env_of pair)) in
  let outcome =
    Conformance.wr_uniformity ~trials:150 ~universe
      ~draw:(fun ~attempt ->
        let rng = Prng.create ~seed:(0xB1A5 + attempt) () in
        fun () -> Negative.biased_wr_draw rng ~universe ~r:16)
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "biased WR sampler rejected (p=%.2e)" outcome.Kernel.p_value)
    false outcome.Kernel.passed;
  Alcotest.(check int) "every attempt rejected" 3 outcome.Kernel.attempts

(* ------------------------------------------------------------------ *)
(* End-to-end matrix runner (reduced matrix; the full 230-comparison
   sweep — 144 cells + 72 estimator KS rows (strategy × estimator ×
   domains) + 2 chain rows + 12 picker rows (profile × domains) — runs
   under @conformance / rsj verify).    *)

let test_conformance_run_mini () =
  let config =
    { (Conformance.default_config ()) with Conformance.trials = 40; seed = 0x7357 }
  in
  let cells =
    Conformance.matrix
      ~strategies:[ Strategy.Stream; Strategy.Olken ]
      ~skews:[ List.nth Conformance.default_skews 1 ]
      ~domain_counts:[ 1; 2 ] ()
  in
  Alcotest.(check int) "2 strategies x 3 semantics x 1 skew x 2 domains" 12 (List.length cells);
  let summary = Conformance.run ~config ~cells () in
  Alcotest.(check int) "comparisons = cells + KS rows + chain rows + picker rows"
    (12 + (2 * 3 * 2) + 2 + (4 * 2))
    summary.Conformance.comparisons;
  Alcotest.(check int) "one picker row per profile x domain count" 8
    (List.length summary.Conformance.pickers);
  (* Under the skewed instance with a full catalog the picker must not
     fall back to Naive; under the empty profile it must. *)
  List.iter
    (fun (label, _, _) ->
      if String.length label >= 12 && String.sub label 0 12 = "picker[full-" then
        Alcotest.(check bool) (label ^ " avoids Naive") false
          (label = "picker[full->Naive-Sample]");
      if String.length label >= 12 && String.sub label 0 12 = "picker[none-" then
        Alcotest.(check string) "bare catalog routes to Naive"
          "picker[none->Naive-Sample]" label)
    summary.Conformance.pickers;
  Alcotest.(check bool) "mini matrix passes and control is rejected" true
    summary.Conformance.all_pass;
  Alcotest.(check bool) "control rejected" false summary.Conformance.control.Kernel.passed;
  let report = Conformance.report summary in
  Alcotest.(check int) "one report row per comparison + control"
    (summary.Conformance.comparisons + 1)
    (List.length report.Rsj_harness.Report.rows);
  (* Both renderers accept the table (arity check happens inside). *)
  let csv = Rsj_harness.Report.to_csv report in
  Alcotest.(check bool) "csv has header + rows" true
    (List.length (String.split_on_char '\n' (String.trim csv))
    = summary.Conformance.comparisons + 2)

let test_conformance_deterministic () =
  let config =
    { (Conformance.default_config ()) with Conformance.trials = 30; seed = 42 }
  in
  let cells =
    Conformance.matrix ~strategies:[ Strategy.Stream ]
      ~skews:[ List.hd Conformance.default_skews ]
      ~domain_counts:[ 2 ] ()
  in
  let s1 =
    Conformance.run ~config ~cells ~with_aggregates:false ~with_control:false
      ~with_pickers:false ()
  in
  let s2 =
    Conformance.run ~config ~cells ~with_aggregates:false ~with_control:false
      ~with_pickers:false ()
  in
  List.iter2
    (fun (a : Conformance.cell_result) (b : Conformance.cell_result) ->
      Alcotest.(check (float 0.)) "same p-value bit for bit" a.outcome.Kernel.p_value
        b.outcome.Kernel.p_value;
      Alcotest.(check int) "same draw count" a.draws b.draws)
    s1.Conformance.results s2.Conformance.results

let test_trials_env_knob () =
  Alcotest.(check bool) "RSJ_CONF_TRIALS must parse" true
    (try
       Unix.putenv "RSJ_CONF_TRIALS" "not-a-number";
       let r =
         try
           ignore (Conformance.default_config ());
           false
         with Invalid_argument _ -> true
       in
       Unix.putenv "RSJ_CONF_TRIALS" "";
       r
     with e ->
       Unix.putenv "RSJ_CONF_TRIALS" "";
       raise e)

let suite =
  [
    Alcotest.test_case "kernel bucketing preserves totals" `Quick test_bucket_preserves_totals;
    Alcotest.test_case "kernel bucketing collapses underfull" `Quick test_bucket_underfull_collapses;
    Alcotest.test_case "kernel retry policy" `Quick test_kernel_retry_policy;
    Alcotest.test_case "kernel Bonferroni threshold" `Quick test_kernel_threshold;
    Alcotest.test_case "chi-square and G-test agree" `Quick test_kernel_g_vs_chi_agree;
    Alcotest.test_case "oracle matches plan enumeration" `Quick test_oracle_matches_plan;
    Alcotest.test_case "oracle expected-count laws" `Quick test_oracle_expected_laws;
    Alcotest.test_case "oracle chain = walker weights" `Quick test_oracle_chain_matches_walker;
    Alcotest.test_case "biased sampler is rejected" `Slow test_biased_sampler_rejected;
    Alcotest.test_case "matrix runner end to end" `Slow test_conformance_run_mini;
    Alcotest.test_case "matrix runner is deterministic" `Quick test_conformance_deterministic;
    Alcotest.test_case "RSJ_CONF_TRIALS validation" `Quick test_trials_env_knob;
  ]

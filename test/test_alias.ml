(* The Vose alias draw plane: distribution equality against the CDF
   plane on shared weights (the two tables must be interchangeable up
   to the chi-square), degenerate weight shapes, stream identity of
   draw_many against repeated draw, the packed kernel's allocation
   bound, and the shared one-pass weight validation. *)

open Rsj_util

let rng () = Prng.create ~seed:0xA11A5 ()

(* ---------- distribution ---------- *)

(* Chi-square of observed counts against n * prob, with tiny expected
   cells merged into their left neighbour to keep the test valid. *)
let chi_square_ok ~prob ~observed ~n =
  let k = Array.length observed in
  let obs = ref [] and exp_ = ref [] in
  let acc_o = ref 0 and acc_e = ref 0. in
  for i = 0 to k - 1 do
    acc_o := !acc_o + observed.(i);
    acc_e := !acc_e +. (float_of_int n *. prob i);
    if !acc_e >= 10. then begin
      obs := !acc_o :: !obs;
      exp_ := !acc_e :: !exp_;
      acc_o := 0;
      acc_e := 0.
    end
  done;
  (if !acc_e > 0. then
     match (!obs, !exp_) with
     | o :: os, e :: es ->
         obs := (o + !acc_o) :: os;
         exp_ := (e +. !acc_e) :: es
     | [], [] ->
         obs := [ !acc_o ];
         exp_ := [ !acc_e ]
     | _ -> assert false);
  let observed = Array.of_list (List.rev !obs) in
  let expected = Array.of_list (List.rev !exp_) in
  if Array.length observed < 2 then true
  else (Stats_math.chi_square_test ~expected ~observed).Stats_math.p_value > 1e-4

let test_alias_matches_weights () =
  let r = rng () in
  let weights = [| 2.; 2.; 6.; 0.; 10. |] in
  let t = Dist.Alias_table.of_weights weights in
  Alcotest.(check int) "support" 5 (Dist.Alias_table.support t);
  Alcotest.(check (float 1e-12)) "prob 0" 0.1 (Dist.Alias_table.prob t 0);
  Alcotest.(check (float 1e-12)) "prob 3" 0. (Dist.Alias_table.prob t 3);
  Alcotest.(check (float 1e-12)) "prob 4" 0.5 (Dist.Alias_table.prob t 4);
  let n = 50_000 in
  let counts = Array.make 5 0 in
  for _ = 1 to n do
    let i = Dist.Alias_table.draw t r in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(3);
  let expected = Dist.Alias_table.expected_counts t ~n in
  Alcotest.(check (float 1e-9)) "expected_counts" (float_of_int n *. 0.5) expected.(4);
  Alcotest.(check bool) "alias draw matches weights" true
    (chi_square_ok ~prob:(Dist.Alias_table.prob t) ~observed:counts ~n)

(* Alias and CDF built from the same weights expose identical
   normalized probabilities — the planes are interchangeable. *)
let prop_alias_cdf_same_probs =
  QCheck.Test.make ~name:"alias and cdf tables agree on prob" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_bound 10))
    (fun weights ->
      QCheck.assume (List.exists (fun w -> w > 0) weights);
      let w = Array.of_list (List.map float_of_int weights) in
      let a = Dist.Alias_table.of_weights w in
      let c = Dist.Cdf_table.of_weights w in
      let k = Array.length w in
      Dist.Alias_table.support a = k
      && Dist.Cdf_table.support c = k
      && Array.for_all
           (fun i -> Float.abs (Dist.Alias_table.prob a i -. Dist.Cdf_table.prob c i) < 1e-12)
           (Array.init k Fun.id))

(* And the alias draws actually follow that shared law (chi-square per
   random weight vector). *)
let prop_alias_draws_match_cdf_law =
  QCheck.Test.make ~name:"alias draws follow the cdf law (chi-square)" ~count:25
    QCheck.(pair small_nat (list_of_size (QCheck.Gen.int_range 2 20) (int_bound 10)))
    (fun (seed, weights) ->
      QCheck.assume (List.exists (fun w -> w > 0) weights);
      let w = Array.of_list (List.map float_of_int weights) in
      let a = Dist.Alias_table.of_weights w in
      let c = Dist.Cdf_table.of_weights w in
      let r = Prng.create ~seed:(abs seed + 1) () in
      let n = 4_000 in
      let counts = Array.make (Array.length w) 0 in
      for _ = 1 to n do
        let i = Dist.Alias_table.draw a r in
        counts.(i) <- counts.(i) + 1
      done;
      chi_square_ok ~prob:(Dist.Cdf_table.prob c) ~observed:counts ~n)

(* ---------- degenerate shapes ---------- *)

let test_single_element () =
  let r = rng () in
  let t = Dist.Alias_table.of_weights [| 42. |] in
  Alcotest.(check (float 1e-12)) "prob" 1. (Dist.Alias_table.prob t 0);
  for _ = 1 to 100 do
    Alcotest.(check int) "always 0" 0 (Dist.Alias_table.draw t r)
  done

let test_near_equal_weights () =
  let r = rng () in
  let k = 17 in
  (* Weights equal up to one ulp: the small/large worklists are driven
     entirely by float rounding, the classic stress for Vose pairing. *)
  let w = Array.init k (fun i -> if i mod 2 = 0 then 1. else 1. +. epsilon_float) in
  let t = Dist.Alias_table.of_weights w in
  let counts = Array.make k 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Dist.Alias_table.draw t r in
    Alcotest.(check bool) "in range" true (i >= 0 && i < k);
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "near-uniform" true
    (chi_square_ok ~prob:(Dist.Alias_table.prob t) ~observed:counts ~n)

let test_large_support () =
  let r = rng () in
  let k = 100_000 in
  (* One heavy cell in a sea of light ones: the build's large stack
     donates one cell's mass at a time across ~k small cells. *)
  let w = Array.make k 1. in
  w.(k / 2) <- float_of_int k;
  let t = Dist.Alias_table.of_weights w in
  let total = float_of_int ((k - 1) + k) in
  Alcotest.(check (float 1e-9)) "heavy prob" (float_of_int k /. total)
    (Dist.Alias_table.prob t (k / 2));
  let heavy = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let i = Dist.Alias_table.draw t r in
    Alcotest.(check bool) "in range" true (i >= 0 && i < k);
    if i = k / 2 then incr heavy
  done;
  (* Binomial(n, 1/2): 5 sigma is 250. *)
  Alcotest.(check bool)
    (Printf.sprintf "heavy cell drawn ~n/2 (%d)" !heavy)
    true
    (abs (!heavy - (n / 2)) < 250)

(* ---------- draw_many stream identity ---------- *)

let prop_draw_many_is_repeated_draw =
  QCheck.Test.make ~name:"Alias_int.draw_many = repeated draw (same seed)" ~count:200
    QCheck.(pair small_nat (list_of_size (QCheck.Gen.int_range 1 30) (int_bound 10)))
    (fun (seed, weights) ->
      QCheck.assume (List.exists (fun w -> w > 0) weights);
      let w = Array.of_list (List.map float_of_int weights) in
      let t = Alias_int.of_weights w in
      let n = 64 in
      let r1 = Prng.create ~seed:(abs seed + 1) () in
      let singles = Array.init n (fun _ -> Alias_int.draw t r1) in
      let r2 = Prng.create ~seed:(abs seed + 1) () in
      let batched = Array.make n 0 in
      Alias_int.draw_many t r2 ~into:batched ~n;
      singles = batched)

let test_draw_table_draw_many_both_planes () =
  List.iter
    (fun plane ->
      let prev = Dist.draw_plane () in
      Dist.set_draw_plane plane;
      Fun.protect ~finally:(fun () -> Dist.set_draw_plane prev) @@ fun () ->
      let t = Dist.Draw_table.of_weights [| 1.; 5.; 2.; 0.; 8. |] in
      Alcotest.(check bool) "plane recorded" true (Dist.Draw_table.plane t = plane);
      let n = 64 in
      let r1 = Prng.create ~seed:7 () in
      let singles = Array.init n (fun _ -> Dist.Draw_table.draw t r1) in
      let r2 = Prng.create ~seed:7 () in
      let batched = Array.make n 0 in
      Dist.Draw_table.draw_many t r2 ~into:batched ~n;
      Alcotest.(check (array int)) "batched = singles" singles batched)
    [ Dist.Cdf; Dist.Alias ]

(* ---------- allocation ---------- *)

let test_draw_many_allocation () =
  let weights = Array.init 1024 (fun i -> float_of_int (1 + (i mod 17))) in
  let t = Alias_int.of_weights weights in
  let r = rng () in
  let into = Array.make 10_000 0 in
  Alias_int.draw_many t r ~into ~n:10_000;
  let w0 = Gc.minor_words () in
  Alias_int.draw_many t r ~into ~n:10_000;
  let words = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "10k draws allocate %.0f minor words (< 256)" words)
    true (words < 256.)

(* ---------- validation ---------- *)

let test_validation () =
  let check_raises_both msg f_cdf f_alias =
    Alcotest.check_raises ("cdf: " ^ msg)
      (Invalid_argument ("Dist.Cdf_table.of_weights: " ^ msg)) f_cdf;
    Alcotest.check_raises ("alias: " ^ msg)
      (Invalid_argument ("Dist.Alias_table.of_weights: " ^ msg)) f_alias
  in
  check_raises_both "negative weight"
    (fun () -> ignore (Dist.Cdf_table.of_weights [| 1.; -1. |]))
    (fun () -> ignore (Dist.Alias_table.of_weights [| 1.; -1. |]));
  check_raises_both "negative weight"
    (fun () -> ignore (Dist.Cdf_table.of_weights [| nan |]))
    (fun () -> ignore (Dist.Alias_table.of_weights [| nan |]));
  check_raises_both "weights must have positive sum"
    (fun () -> ignore (Dist.Cdf_table.of_weights [| 0.; 0. |]))
    (fun () -> ignore (Dist.Alias_table.of_weights [| 0.; 0. |]));
  Alcotest.(check (float 1e-12))
    "validate_weights returns the sum" 6.
    (Dist.validate_weights ~who:"t" [| 1.; 2.; 3. |])

let test_plane_of_env_values () =
  (* The in-process toggle; the env parse itself is covered by the
     @drawplane sweep running rsj verify under both values. *)
  let prev = Dist.draw_plane () in
  Fun.protect ~finally:(fun () -> Dist.set_draw_plane prev) @@ fun () ->
  Dist.set_draw_plane Dist.Cdf;
  Alcotest.(check string) "cdf name" "cdf" (Dist.draw_plane_name ());
  Dist.set_draw_plane Dist.Alias;
  Alcotest.(check string) "alias name" "alias" (Dist.draw_plane_name ())

let suite =
  [
    Alcotest.test_case "alias table matches weights (chi2)" `Slow test_alias_matches_weights;
    Alcotest.test_case "single-element table" `Quick test_single_element;
    Alcotest.test_case "near-equal weights" `Slow test_near_equal_weights;
    Alcotest.test_case "k=100k with one heavy cell" `Slow test_large_support;
    Alcotest.test_case "Draw_table draw_many on both planes" `Quick
      test_draw_table_draw_many_both_planes;
    Alcotest.test_case "draw_many allocation bound" `Quick test_draw_many_allocation;
    Alcotest.test_case "shared weight validation" `Quick test_validation;
    Alcotest.test_case "plane toggle names" `Quick test_plane_of_env_values;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_alias_cdf_same_probs; prop_alias_draws_match_cdf_law; prop_draw_many_is_repeated_draw ]

(* The warm structure cache (lib/cache): hit/miss accounting,
   fingerprint-based staleness, explicit invalidation, the LRU byte
   budget, and the warm env being a faithful drop-in for
   Strategy.make_env. *)

open Rsj_relation
module Cache = Rsj_cache.Structure_cache
module Strategy = Rsj_core.Strategy
module Zipf_tables = Rsj_workload.Zipf_tables

let make_pair ?(seed = 0xCAFE) () =
  Zipf_tables.make_pair ~seed ~n1:60 ~n2:240 ~z1:1. ~z2:1. ~domain:24 ()

let key = Zipf_tables.col2

let test_hit_miss_accounting () =
  let c = Cache.create () in
  let pair = make_pair () in
  let i1 = Cache.hash_index c pair.Zipf_tables.inner ~key in
  let s0 = Cache.stats c in
  Alcotest.(check int) "first build is a miss" 1 s0.Cache.misses;
  Alcotest.(check int) "no hits yet" 0 s0.Cache.hits;
  let i2 = Cache.hash_index c pair.Zipf_tables.inner ~key in
  let s1 = Cache.stats c in
  Alcotest.(check int) "second touch is a hit" 1 s1.Cache.hits;
  Alcotest.(check int) "still one miss" 1 s1.Cache.misses;
  Alcotest.(check bool) "the very same structure is served" true (i1 == i2);
  (* A different structure kind on the same column is its own entry. *)
  ignore (Cache.frequency c pair.Zipf_tables.inner ~key);
  let s2 = Cache.stats c in
  Alcotest.(check int) "frequency is a second miss" 2 s2.Cache.misses;
  Alcotest.(check int) "two live entries" 2 s2.Cache.entries;
  Alcotest.(check bool) "footprint is measured" true (s2.Cache.bytes > 0)

(* Mutation bumps the relation's version, so the fingerprint key stops
   matching: the stale structure can never be served again. *)
let test_mutation_invalidates () =
  let c = Cache.create () in
  let pair = make_pair () in
  let rel = pair.Zipf_tables.inner in
  let idx = Cache.hash_index c rel ~key in
  Relation.append rel [| Value.Int 9999; Value.Int 1; Value.str "pad" |];
  let idx' = Cache.hash_index c rel ~key in
  let s = Cache.stats c in
  Alcotest.(check bool) "post-append structure is a fresh build" true (not (idx == idx'));
  Alcotest.(check int) "both builds were misses" 2 s.Cache.misses;
  Alcotest.(check bool) "stale entry dropped as an invalidation" true
    (s.Cache.invalidations >= 1);
  Alcotest.(check int) "only the fresh entry lives" 1 s.Cache.entries

let test_explicit_invalidate () =
  let c = Cache.create () in
  let pair = make_pair () in
  let rel = pair.Zipf_tables.inner in
  ignore (Cache.hash_index c rel ~key);
  ignore (Cache.frequency c rel ~key);
  Cache.invalidate c rel;
  let s = Cache.stats c in
  Alcotest.(check int) "no live entries" 0 s.Cache.entries;
  Alcotest.(check int) "zero bytes held" 0 s.Cache.bytes;
  Alcotest.(check bool) "invalidations counted" true (s.Cache.invalidations >= 2);
  ignore (Cache.hash_index c rel ~key);
  Alcotest.(check int) "rebuild after invalidate is a miss" 3 (Cache.stats c).Cache.misses

(* The byte budget: measure one relation's structure footprint with an
   unbounded cache, then give a bounded cache room for about two of
   them and insert five. LRU entries must be evicted and the measured
   footprint must stay within the budget (every entry individually
   fits, so the invariant is enforceable). *)
let test_lru_eviction_budget () =
  let pairs = List.init 5 (fun i -> make_pair ~seed:(0xCAFE + (17 * (i + 1))) ()) in
  let probe = Cache.create () in
  ignore (Cache.hash_index probe (List.hd pairs).Zipf_tables.inner ~key);
  let per_relation = (Cache.stats probe).Cache.bytes in
  Alcotest.(check bool) "probe measured something" true (per_relation > 0);
  let budget = 2 * per_relation in
  let c = Cache.create ~max_bytes:budget () in
  Alcotest.(check bool) "budget is reported" true (Cache.max_bytes c = Some budget);
  List.iter (fun p -> ignore (Cache.hash_index c p.Zipf_tables.inner ~key)) pairs;
  let s = Cache.stats c in
  Alcotest.(check bool)
    (Printf.sprintf "evictions happened (%d entries, %d bytes)" s.Cache.entries s.Cache.bytes)
    true
    (s.Cache.evictions > 0);
  Alcotest.(check bool)
    (Printf.sprintf "footprint %d within budget %d" s.Cache.bytes budget)
    true
    (s.Cache.bytes <= budget);
  Alcotest.(check bool) "something still cached" true (s.Cache.entries > 0);
  (* The most recently inserted relation survived (LRU evicts oldest). *)
  let last = List.nth pairs 4 in
  let before = (Cache.stats c).Cache.hits in
  ignore (Cache.hash_index c last.Zipf_tables.inner ~key);
  Alcotest.(check int) "newest entry was retained" (before + 1) (Cache.stats c).Cache.hits

(* The warm env must be a faithful drop-in: same seed, same strategy,
   byte-identical sample — the cache only changes who builds the
   structures, never what is sampled. *)
let test_warm_env_identical () =
  let pair = make_pair () in
  let left = pair.Zipf_tables.outer and right = pair.Zipf_tables.inner in
  let sample_of env s =
    (Rsj_parallel.run env s ~r:24 ~domains:1).Strategy.sample
    |> Array.map Tuple.to_string |> Array.to_list
  in
  let c = Cache.create () in
  List.iter
    (fun s ->
      let cold =
        Strategy.make_env ~seed:77 ~left ~right ~left_key:key ~right_key:key ()
      in
      let warm = Cache.env c ~seed:77 ~left ~right ~left_key:key ~right_key:key () in
      Alcotest.(check (list string))
        (Strategy.name s ^ ": warm env samples identically")
        (sample_of cold s) (sample_of warm s))
    Strategy.all;
  Alcotest.(check bool) "repeated envs actually hit the cache" true
    ((Cache.stats c).Cache.hits > 0)

(* The chain getter: a prepared walker is cached under the root with a
   fingerprint mixing every member, so a warm lookup serves the very
   same walker, per-kind counters expose the traffic, and mutating any
   member — not just the root — forces a rebuild. *)
let test_chain_entry () =
  let c = Cache.create () in
  let pair = make_pair () in
  let third =
    Zipf_tables.make ~seed:0xBEEF ~name:"third" ~rows:120 ~z:1. ~domain:24 ()
  in
  let spec =
    {
      Rsj_core.Chain_sample.relations =
        [| pair.Zipf_tables.outer; pair.Zipf_tables.inner; third |];
      join_keys = [| (key, key); (key, key) |];
    }
  in
  let cs1 = Cache.chain c spec in
  let cs2 = Cache.chain c spec in
  Alcotest.(check bool) "warm lookup serves the same walker" true (cs1 == cs2);
  let s = Cache.stats c in
  Alcotest.(check bool) "by_kind reports chain traffic" true
    (List.assoc_opt "chain" s.Cache.by_kind = Some (1, 1));
  (* Mutating a non-root member must invalidate: the mixed fingerprint
     stops matching even though the root is untouched. *)
  Relation.append third [| Value.Int 9999; Value.Int 1; Value.str "pad" |];
  let cs3 = Cache.chain c spec in
  Alcotest.(check bool) "member mutation rebuilds the walker" true (not (cs2 == cs3));
  Alcotest.(check bool) "rebuild counted as a chain miss" true
    (List.assoc_opt "chain" (Cache.stats c).Cache.by_kind = Some (1, 2));
  (* The cached walker samples identically to a cold prepare. *)
  let draw w =
    let rng = Rsj_util.Prng.create ~seed:51 () in
    Rsj_core.Chain_sample.sample w rng ~r:16 ()
    |> Array.map Tuple.to_string |> Array.to_list
  in
  let cold = Rsj_core.Chain_sample.prepare spec in
  Alcotest.(check (list string)) "warm walker samples identically" (draw cold) (draw cs3)

let suite =
  [
    Alcotest.test_case "hit/miss accounting" `Quick test_hit_miss_accounting;
    Alcotest.test_case "mutation invalidates via fingerprint" `Quick test_mutation_invalidates;
    Alcotest.test_case "explicit invalidate" `Quick test_explicit_invalidate;
    Alcotest.test_case "LRU eviction respects the byte budget" `Quick test_lru_eviction_budget;
    Alcotest.test_case "warm env is sample-identical to cold" `Quick test_warm_env_identical;
    Alcotest.test_case "chain walker entry (by_kind, member invalidation)" `Quick
      test_chain_entry;
  ]

open Rsj_relation
open Rsj_exec

let schema_ab = Schema.of_list [ ("a", Value.T_int); ("b", Value.T_int) ]
let schema_ac = Schema.of_list [ ("a", Value.T_int); ("c", Value.T_int) ]

let rel name schema rows =
  Relation.of_tuples ~name schema (List.map (fun r -> Array.of_list (List.map Value.int r)) rows)

let left () = rel "L" schema_ab [ [ 1; 10 ]; [ 2; 20 ]; [ 2; 21 ]; [ 3; 30 ] ]
let right () = rel "R" schema_ac [ [ 2; 200 ]; [ 2; 201 ]; [ 3; 300 ]; [ 4; 400 ] ]

(* The expected equi-join of left and right on a: (2,20)x(2,200),(2,201);
   (2,21)x(2,200),(2,201); (3,30)x(3,300) -> 5 tuples. *)
let expected_join_size = 5

let sort_tuples l = List.sort Tuple.compare l

let expected_join_tuples () =
  sort_tuples
    (List.map Tuple.of_ints
       [
         [ 2; 20; 2; 200 ];
         [ 2; 20; 2; 201 ];
         [ 2; 21; 2; 200 ];
         [ 2; 21; 2; 201 ];
         [ 3; 30; 3; 300 ];
       ])

let join algorithm =
  Plan.Join
    {
      Plan.algorithm;
      left = Plan.Scan (left ());
      right = Plan.Scan (right ());
      left_key = 0;
      right_key = 0;
    }

let test_join_algorithms_agree () =
  List.iter
    (fun alg ->
      let out = sort_tuples (Plan.collect (join alg)) in
      Alcotest.(check int) "size" expected_join_size (List.length out);
      List.iter2
        (fun a b -> Alcotest.(check bool) "tuples equal" true (Tuple.equal a b))
        (expected_join_tuples ()) out)
    [ Plan.Hash; Plan.Merge; Plan.Nested_loop ]

let test_join_null_never_matches () =
  let l = Relation.of_tuples ~name:"L" schema_ab [ [| Value.Null; Value.Int 1 |] ] in
  let r = Relation.of_tuples ~name:"R" schema_ac [ [| Value.Null; Value.Int 2 |] ] in
  List.iter
    (fun alg ->
      let p =
        Plan.Join
          { Plan.algorithm = alg; left = Plan.Scan l; right = Plan.Scan r; left_key = 0; right_key = 0 }
      in
      Alcotest.(check int) "null joins nothing" 0 (Plan.count p))
    [ Plan.Hash; Plan.Merge; Plan.Nested_loop ]

let test_join_schema () =
  let s = Plan.schema_of (join Plan.Hash) in
  Alcotest.(check int) "arity 4" 4 (Schema.arity s);
  Alcotest.(check string) "collision prefixed" "l.a" (Schema.column_name s 0)

let test_index_join () =
  let idx = Rsj_index.Hash_index.build (right ()) ~key:0 in
  let p = Plan.Index_join { Plan.ij_left = Plan.Scan (left ()); ij_left_key = 0; ij_index = idx } in
  let out = sort_tuples (Plan.collect p) in
  Alcotest.(check int) "size" expected_join_size (List.length out);
  List.iter2
    (fun a b -> Alcotest.(check bool) "tuples" true (Tuple.equal a b))
    (expected_join_tuples ()) out

let test_filter_project () =
  let p =
    Plan.Project
      ([ 1 ], Plan.Filter (Predicate.Ge (0, Value.Int 2), Plan.Scan (left ())))
  in
  let out = Plan.collect p in
  Alcotest.(check (list int)) "b values with a>=2" [ 20; 21; 30 ]
    (List.map (fun t -> Value.to_int_exn (Tuple.get t 0)) out)

let test_sort_limit () =
  let p = Plan.Limit (2, Plan.Sort (1, Plan.Scan (left ()))) in
  let out = Plan.collect p in
  Alcotest.(check (list int)) "two smallest b" [ 10; 20 ]
    (List.map (fun t -> Value.to_int_exn (Tuple.get t 1)) out)

let test_metrics_counting () =
  let m = Metrics.create () in
  ignore (Plan.collect ~metrics:m (join Plan.Hash));
  Alcotest.(check int) "scanned both relations" 8 m.Metrics.tuples_scanned;
  Alcotest.(check int) "hash build = |R|" 4 m.Metrics.hash_build_tuples;
  Alcotest.(check int) "join outputs" expected_join_size m.Metrics.join_output_tuples;
  Alcotest.(check int) "delivered" expected_join_size m.Metrics.output_tuples

let test_metrics_ops () =
  let a = Metrics.create () in
  a.Metrics.tuples_scanned <- 3;
  a.Metrics.stats_lookups <- 2;
  let b = Metrics.copy a in
  Alcotest.(check int) "copy" 3 b.Metrics.tuples_scanned;
  let c = Metrics.add a b in
  Alcotest.(check int) "add" 6 c.Metrics.tuples_scanned;
  Alcotest.(check int) "total_work" 10 (Metrics.total_work c);
  Metrics.reset a;
  Alcotest.(check int) "reset" 0 (Metrics.total_work a);
  Alcotest.(check int) "assoc entries" 9 (List.length (Metrics.to_assoc c))

(* Exercise every counter through the derived operations at once, so a
   field dropped from the spec table (the drift the refactor guards
   against) fails here rather than silently exporting zeros. *)
let test_metrics_field_spec_consistency () =
  let m = Metrics.create () in
  m.Metrics.tuples_scanned <- 1;
  m.Metrics.join_output_tuples <- 2;
  m.Metrics.index_probes <- 3;
  m.Metrics.hash_build_tuples <- 4;
  m.Metrics.sort_tuples <- 5;
  m.Metrics.output_tuples <- 6;
  m.Metrics.random_accesses <- 7;
  m.Metrics.rejected_samples <- 8;
  m.Metrics.stats_lookups <- 9;
  let expected =
    [
      ("tuples_scanned", 1);
      ("join_output_tuples", 2);
      ("index_probes", 3);
      ("hash_build_tuples", 4);
      ("sort_tuples", 5);
      ("output_tuples", 6);
      ("random_accesses", 7);
      ("rejected_samples", 8);
      ("stats_lookups", 9);
    ]
  in
  Alcotest.(check (list (pair string int))) "to_assoc sees every field" expected
    (Metrics.to_assoc m);
  Alcotest.(check (list (pair string int))) "copy round-trips every field" expected
    (Metrics.to_assoc (Metrics.copy m));
  Alcotest.(check (list (pair string int))) "add doubles every field"
    (List.map (fun (k, v) -> (k, 2 * v)) expected)
    (Metrics.to_assoc (Metrics.add m m));
  (* total_work is the assoc sum minus delivered output tuples. *)
  Alcotest.(check int) "total_work excludes output_tuples"
    (List.fold_left (fun acc (_, v) -> acc + v) 0 expected - m.Metrics.output_tuples)
    (Metrics.total_work m);
  let c = Metrics.copy m in
  Metrics.reset c;
  Alcotest.(check (list (pair string int))) "reset zeroes every field"
    (List.map (fun (k, _) -> (k, 0)) expected)
    (Metrics.to_assoc c)

let test_transform_node () =
  (* A transform doubling every first column models a sampling operator
     splice point. *)
  let double m stream =
    ignore m;
    Stream0.map
      (fun t -> [| Value.Int (2 * Value.to_int_exn (Tuple.get t 0)); Tuple.get t 1 |])
      stream
  in
  let p =
    Plan.Transform
      {
        Plan.transform_name = "Double";
        child = Plan.Scan (left ());
        out_schema = None;
        apply = double;
      }
  in
  let out = Plan.collect p in
  Alcotest.(check (list int)) "doubled" [ 2; 4; 4; 6 ]
    (List.map (fun t -> Value.to_int_exn (Tuple.get t 0)) out)

let test_source_node () =
  let produce () = Stream0.of_list [ Tuple.of_ints [ 7; 8 ] ] in
  let p = Plan.source_of_stream ~name:"pipe" schema_ab produce in
  Alcotest.(check int) "one tuple" 1 (Plan.count p)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_explain_renders () =
  let s = Format.asprintf "%a" Plan.explain (join Plan.Hash) in
  Alcotest.(check bool) "mentions join" true (contains ~needle:"Join (hash)" s);
  Alcotest.(check bool) "mentions scans" true (contains ~needle:"Scan L" s)

let test_predicates () =
  let t = Tuple.of_ints [ 5; 10 ] in
  let open Predicate in
  Alcotest.(check bool) "eq" true (eval (Eq (0, Value.Int 5)) t);
  Alcotest.(check bool) "ne" true (eval (Ne (0, Value.Int 6)) t);
  Alcotest.(check bool) "lt" true (eval (Lt (0, Value.Int 6)) t);
  Alcotest.(check bool) "le" true (eval (Le (0, Value.Int 5)) t);
  Alcotest.(check bool) "gt" false (eval (Gt (0, Value.Int 5)) t);
  Alcotest.(check bool) "ge" true (eval (Ge (1, Value.Int 10)) t);
  Alcotest.(check bool) "between" true (eval (Between (1, Value.Int 9, Value.Int 11)) t);
  Alcotest.(check bool) "and" true (eval (And (True, Eq (0, Value.Int 5))) t);
  Alcotest.(check bool) "or" true (eval (Or (Eq (0, Value.Int 9), True)) t);
  Alcotest.(check bool) "not" false (eval (Not True) t);
  Alcotest.(check bool) "custom" true (eval (Custom ("c", fun _ -> true)) t);
  let tn = [| Value.Null; Value.Int 1 |] in
  Alcotest.(check bool) "null comparison false" false (eval (Eq (0, Value.Int 5)) tn);
  Alcotest.(check bool) "null lt false" false (eval (Lt (0, Value.Int 99)) tn);
  Alcotest.(check bool) "is_null" true (eval (Is_null 0) tn);
  Alcotest.(check bool) "not_null" true (eval (Not_null 1) tn);
  Alcotest.(check bool) "to_string total" true (String.length (to_string (And (True, Not (Eq (0, Value.Int 1))))) > 0)

let test_io_model () =
  let open Rsj_exec in
  let m = Metrics.create () in
  m.Metrics.tuples_scanned <- 1_000;
  m.Metrics.random_accesses <- 10;
  m.Metrics.index_probes <- 5;
  m.Metrics.join_output_tuples <- 200;
  let disk = Io_model.default_disk in
  (* 10 sequential pages + 15 random pages * 4 + 200 * 0.01 *)
  Alcotest.(check (float 1e-9)) "disk cost" (10. +. 60. +. 2.) (Io_model.cost disk m);
  (* in-memory: scans count per tuple *)
  Alcotest.(check (float 1e-9)) "in-memory cost" (1000. +. 15. +. 200.)
    (Io_model.cost Io_model.in_memory m);
  let baseline = Metrics.create () in
  baseline.Metrics.tuples_scanned <- 2_000;
  Alcotest.(check (float 1e-9)) "relative" (72. /. 20. *. 100.)
    (Io_model.relative_pct disk ~baseline m);
  Alcotest.(check bool) "bad page size" true
    (try ignore (Io_model.cost { disk with Io_model.page_size_tuples = 0 } m); false
     with Invalid_argument _ -> true)

let test_io_model_orders_random_access () =
  (* Two runs with the same total_work: the disk model must punish the
     random-access-heavy one. *)
  let open Rsj_exec in
  let scanner = Metrics.create () in
  scanner.Metrics.tuples_scanned <- 10_000;
  let prober = Metrics.create () in
  prober.Metrics.random_accesses <- 10_000;
  Alcotest.(check int) "same in-memory work" (Metrics.total_work scanner)
    (Metrics.total_work prober);
  Alcotest.(check bool) "disk model separates them" true
    (Io_model.cost Io_model.default_disk prober
     > 100. *. Io_model.cost Io_model.default_disk scanner)

let suite =
  [
    Alcotest.test_case "hash/merge/nested-loop joins agree" `Quick test_join_algorithms_agree;
    Alcotest.test_case "NULL never joins" `Quick test_join_null_never_matches;
    Alcotest.test_case "join output schema" `Quick test_join_schema;
    Alcotest.test_case "index nested-loop join" `Quick test_index_join;
    Alcotest.test_case "filter and project" `Quick test_filter_project;
    Alcotest.test_case "sort and limit" `Quick test_sort_limit;
    Alcotest.test_case "metrics counted by operators" `Quick test_metrics_counting;
    Alcotest.test_case "metrics arithmetic" `Quick test_metrics_ops;
    Alcotest.test_case "metrics field-spec consistency" `Quick test_metrics_field_spec_consistency;
    Alcotest.test_case "transform extension point" `Quick test_transform_node;
    Alcotest.test_case "pipelined source node" `Quick test_source_node;
    Alcotest.test_case "explain renders" `Quick test_explain_renders;
    Alcotest.test_case "predicate evaluation incl. NULL" `Quick test_predicates;
    Alcotest.test_case "I/O cost model arithmetic" `Quick test_io_model;
    Alcotest.test_case "I/O model penalizes random access" `Quick test_io_model_orders_random_access;
  ]

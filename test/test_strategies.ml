open Rsj_relation
open Rsj_core
module Zipf_tables = Rsj_workload.Zipf_tables
module Frequency = Rsj_stats.Frequency
module Metrics = Rsj_exec.Metrics

(* A small skewed join instance on which the full join is cheap to
   enumerate, so uniformity can be chi-square tested cell by cell. *)
let small_env ?(seed = 0xAB) ?(histogram_fraction = 0.05) ?(z1 = 1.) ?(z2 = 2.) () =
  let pair = Zipf_tables.make_pair ~seed ~n1:40 ~n2:80 ~z1 ~z2 ~domain:6 () in
  Strategy.make_env ~seed ~histogram_fraction ~left:pair.outer ~right:pair.inner
    ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()

let full_join env =
  let plan =
    Rsj_exec.Plan.Join
      {
        Rsj_exec.Plan.algorithm = Rsj_exec.Plan.Hash;
        left = Rsj_exec.Plan.Scan (Strategy.env_left env);
        right = Rsj_exec.Plan.Scan (Strategy.env_right env);
        left_key = Zipf_tables.col2;
        right_key = Zipf_tables.col2;
      }
  in
  Array.of_list (Rsj_exec.Plan.collect plan)

let join_member_set env =
  let tbl = Hashtbl.create 1024 in
  Array.iter (fun t -> Hashtbl.replace tbl t ()) (full_join env);
  tbl

let test_all_strategies_return_r () =
  let env = small_env () in
  List.iter
    (fun s ->
      let res = Strategy.run env s ~r:25 in
      Alcotest.(check int) (Strategy.name s ^ " returns r") 25 (Array.length res.sample))
    Strategy.all

let test_all_strategies_emit_join_tuples () =
  let env = small_env () in
  let members = join_member_set env in
  List.iter
    (fun s ->
      let res = Strategy.run env s ~r:40 in
      Array.iter
        (fun t ->
          Alcotest.(check bool)
            (Strategy.name s ^ " emits only join tuples")
            true (Hashtbl.mem members t))
        res.sample)
    Strategy.all

let test_all_strategies_uniform () =
  let env = small_env () in
  let universe = full_join env in
  List.iter
    (fun s ->
      let report =
        Negative.uniformity_check ~trials:200 ~universe ~draw:(fun () ->
            (Strategy.run env s ~r:20).sample)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s uniform over J (p=%.5f, %d cells)" (Strategy.name s)
           report.chi_square.p_value report.cells)
        true
        (report.chi_square.p_value > 0.0005))
    Strategy.all

let test_r_zero () =
  let env = small_env () in
  List.iter
    (fun s ->
      let res = Strategy.run env s ~r:0 in
      Alcotest.(check int) (Strategy.name s ^ " r=0") 0 (Array.length res.sample))
    Strategy.all

let test_r_larger_than_join () =
  let env = small_env () in
  let n = Strategy.env_join_size env in
  let r = (2 * n) + 7 in
  (* WR semantics allow r > |J|; every strategy must deliver. *)
  List.iter
    (fun s ->
      let res = Strategy.run env s ~r in
      Alcotest.(check int) (Strategy.name s ^ " oversampling") r (Array.length res.sample))
    Strategy.all

let empty_join_env () =
  let schema = Zipf_tables.schema in
  let mk name vals =
    Relation.of_tuples ~name schema
      (List.mapi (fun i v -> [| Value.Int i; Value.Int v; Value.str "p" |]) vals)
  in
  Strategy.make_env ~left:(mk "L" [ 1; 2; 3 ]) ~right:(mk "R" [ 4; 5; 6 ])
    ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()

let test_empty_join () =
  let env = empty_join_env () in
  List.iter
    (fun s ->
      match s with
      | Strategy.Olken ->
          (* Olken cannot terminate on an empty join; it must fail loudly. *)
          Alcotest.(check bool) "olken fails loudly" true
            (try
               ignore (Strategy.run env s ~r:5);
               false
             with Failure _ -> true)
      | _ ->
          let res = Strategy.run env s ~r:5 in
          Alcotest.(check int) (Strategy.name s ^ " empty join") 0 (Array.length res.sample))
    Strategy.all

let test_naive_work_is_full_join () =
  let env = small_env () in
  let n = Strategy.env_join_size env in
  let res = Strategy.run env Strategy.Naive ~r:10 in
  Alcotest.(check int) "naive computes all of J" n res.metrics.Metrics.join_output_tuples

let test_stream_sample_work_is_r () =
  let env = small_env () in
  let res = Strategy.run env Strategy.Stream ~r:30 in
  Alcotest.(check int) "one join output per sample (Thm 6)" 30
    res.metrics.Metrics.join_output_tuples;
  Alcotest.(check int) "no rejections" 0 res.metrics.Metrics.rejected_samples

let test_olken_produces_r_with_rejections () =
  let env = small_env () in
  let res = Strategy.run env Strategy.Olken ~r:50 in
  Alcotest.(check int) "accepted = r" 50 res.metrics.Metrics.join_output_tuples;
  Alcotest.(check bool) "skewed join causes rejections" true
    (res.metrics.Metrics.rejected_samples > 0)

let test_olken_iteration_count_matches_theorem5 () =
  (* Iterations = accepted + rejected; expectation r * M*n1/n. *)
  let env = small_env () in
  let m1 = Frequency.of_relation (Strategy.env_left env) ~key:Zipf_tables.col2 in
  let m2 = Strategy.env_right_stats env in
  let per_tuple = Rsj_stats.Join_size.olken_expected_iterations ~m1 ~m2 in
  let r = 400 in
  let res = Strategy.run env Strategy.Olken ~r in
  let iterations =
    res.metrics.Metrics.join_output_tuples + res.metrics.Metrics.rejected_samples
  in
  let expected = per_tuple *. float_of_int r in
  Alcotest.(check bool)
    (Printf.sprintf "iterations %d within 35%% of %.0f" iterations expected)
    true
    (Float.abs (float_of_int iterations -. expected) < 0.35 *. expected)

let test_group_sample_work_matches_theorem7 () =
  let env = small_env () in
  let m1 = Frequency.of_relation (Strategy.env_left env) ~key:Zipf_tables.col2 in
  let m2 = Strategy.env_right_stats env in
  let r = 25 in
  let alpha = Rsj_stats.Join_size.alpha_group_sample ~m1 ~m2 ~r in
  let n = Strategy.env_join_size env in
  let expected = alpha *. float_of_int n in
  (* Average over runs to damp the variance. *)
  let runs = 30 in
  let acc = ref 0 in
  for _ = 1 to runs do
    let res = Strategy.run env Strategy.Group ~r in
    acc := !acc + res.metrics.Metrics.join_output_tuples
  done;
  let mean = float_of_int !acc /. float_of_int runs in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.1f ~ predicted %.1f" mean expected)
    true
    (mean > 0.6 *. expected && mean < 1.4 *. expected)

let test_fps_partition_bookkeeping () =
  let env = small_env () in
  let histogram = Strategy.env_histogram env in
  let rng = Rsj_util.Prng.create ~seed:99 () in
  let metrics = Metrics.create () in
  let sample, detail =
    Frequency_partition.sample rng ~metrics ~r:20
      ~left:(Relation.to_stream (Strategy.env_left env))
      ~left_key:Zipf_tables.col2 ~right:(Strategy.env_right env)
      ~right_key:Zipf_tables.col2 ~histogram
  in
  Alcotest.(check int) "r samples" 20 (Array.length sample);
  Alcotest.(check int) "n_hi + n_lo = |J|" (Strategy.env_join_size env)
    (detail.n_hi + detail.n_lo);
  Alcotest.(check int) "r_hi + r_lo = r" 20 (detail.r_hi + detail.r_lo)

let test_fps_work_below_naive_under_skew () =
  let env = small_env ~z1:1. ~z2:3. () in
  let n = Strategy.env_join_size env in
  let res = Strategy.run env Strategy.Frequency_partition ~r:10 in
  Alcotest.(check bool)
    (Printf.sprintf "FPS intermediate %d < |J| = %d"
       res.metrics.Metrics.join_output_tuples n)
    true
    (res.metrics.Metrics.join_output_tuples < n)

let test_index_sample_work_matches_theorem9 () =
  let env = small_env () in
  let m1 = Frequency.of_relation (Strategy.env_left env) ~key:Zipf_tables.col2 in
  let m2 = Strategy.env_right_stats env in
  let histogram = Strategy.env_histogram env in
  let is_high v = Rsj_stats.Histogram.End_biased.is_high histogram v in
  let r = 15 in
  let alpha = Rsj_stats.Join_size.alpha_index_sample ~m1 ~m2 ~is_high ~r in
  let n = Strategy.env_join_size env in
  let res = Strategy.run env Strategy.Index_sample ~r in
  (* Thm 9 is an upper bound in expectation; the measured intermediate
     should sit at alpha*n exactly (lo side deterministic, hi side = r). *)
  Alcotest.(check int) "deterministic work"
    (int_of_float (Float.round (alpha *. float_of_int n)))
    res.metrics.Metrics.join_output_tuples

let test_count_sample_scans_not_joins () =
  let env = small_env () in
  let res = Strategy.run env Strategy.Count_sample ~r:20 in
  Alcotest.(check int) "exactly r join outputs" 20 res.metrics.Metrics.join_output_tuples;
  let n1 = Relation.cardinality (Strategy.env_left env) in
  let n2 = Relation.cardinality (Strategy.env_right env) in
  Alcotest.(check int) "one scan of each relation" (n1 + n2)
    res.metrics.Metrics.tuples_scanned

let test_group_sample_stale_stats_fails () =
  let schema = Zipf_tables.schema in
  let left =
    Relation.of_tuples ~name:"L" schema [ [| Value.Int 1; Value.Int 7; Value.str "p" |] ]
  in
  let right =
    Relation.of_tuples ~name:"R" schema [ [| Value.Int 1; Value.Int 8; Value.str "p" |] ]
  in
  (* Stats claim value 7 exists in R2; it does not. *)
  let stale = Frequency.of_assoc [ (Value.Int 7, 3) ] in
  let rng = Rsj_util.Prng.create () in
  Alcotest.(check bool) "stale stats detected" true
    (try
       ignore
         (Group_sample.sample rng ~metrics:(Metrics.create ()) ~r:2
            ~left:(Relation.to_stream left) ~left_key:Zipf_tables.col2 ~right
            ~right_key:Zipf_tables.col2 ~right_stats:stale);
       false
     with Failure _ -> true)

let test_count_sample_overstated_stats_fails () =
  let schema = Zipf_tables.schema in
  let left =
    Relation.of_tuples ~name:"L" schema [ [| Value.Int 1; Value.Int 7; Value.str "p" |] ]
  in
  let right =
    Relation.of_tuples ~name:"R" schema [ [| Value.Int 1; Value.Int 7; Value.str "p" |] ]
  in
  (* Stats claim m2(7) = 5; only 1 tuple exists, so U1 cannot finish. *)
  let stale = Frequency.of_assoc [ (Value.Int 7, 5) ] in
  let rng = Rsj_util.Prng.create ~seed:123 () in
  let failed = ref false in
  (try
     (* The per-value U1 may or may not exhaust early depending on the
        draw; repeat until the failure path triggers. *)
     for _ = 1 to 50 do
       ignore
         (Count_sample.sample rng ~metrics:(Metrics.create ()) ~r:3
            ~left:(Relation.to_stream left) ~left_key:Zipf_tables.col2 ~right
            ~right_key:Zipf_tables.col2 ~right_stats:stale)
     done
   with Failure _ -> failed := true);
  Alcotest.(check bool) "overstated stats detected" true !failed

let test_foreign_key_join () =
  (* R2's join column is a key: m2(v) = 1. Stream-Sample reduces to
     uniform sampling of matching R1 tuples. *)
  let schema = Zipf_tables.schema in
  let left =
    Relation.of_tuples ~name:"fact" schema
      (List.init 50 (fun i -> [| Value.Int i; Value.Int (i mod 10); Value.str "p" |]))
  in
  let right =
    Relation.of_tuples ~name:"dim" schema
      (List.init 10 (fun i -> [| Value.Int i; Value.Int i; Value.str "p" |]))
  in
  let env = Strategy.make_env ~left ~right ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 () in
  Alcotest.(check int) "|J| = n1 for FK join" 50 (Strategy.env_join_size env);
  List.iter
    (fun s ->
      let res = Strategy.run env s ~r:20 in
      Alcotest.(check int) (Strategy.name s ^ " FK join") 20 (Array.length res.sample))
    Strategy.all

let test_run_wor_distinct () =
  let env = small_env () in
  List.iter
    (fun s ->
      let res = Strategy.run_wor env s ~r:15 in
      Alcotest.(check int) (Strategy.name s ^ " WoR size") 15 (Array.length res.sample);
      let distinct =
        List.sort_uniq Tuple.compare (Array.to_list res.sample) |> List.length
      in
      Alcotest.(check int) (Strategy.name s ^ " WoR distinct") 15 distinct)
    [ Strategy.Naive; Strategy.Stream; Strategy.Frequency_partition ]

let test_table1 () =
  let rows = Strategy.table1 () in
  Alcotest.(check int) "eight strategies" 8 (List.length rows);
  let find n = List.find (fun (name, _, _) -> name = n) rows in
  let _, r1, r2 = find "Naive-Sample" in
  Alcotest.(check string) "naive r1" "-" r1;
  Alcotest.(check string) "naive r2" "-" r2;
  let _, r1, r2 = find "Olken-Sample" in
  Alcotest.(check string) "olken r1" "Index" r1;
  Alcotest.(check string) "olken r2" "Index/Stats." r2;
  let _, r1, r2 = find "Stream-Sample" in
  Alcotest.(check string) "stream r1" "-" r1;
  Alcotest.(check string) "stream r2" "Index/Stats." r2;
  let _, r1, r2 = find "Group-Sample" in
  Alcotest.(check string) "group r1" "-" r1;
  Alcotest.(check string) "group r2" "Statistics" r2;
  let _, r1, r2 = find "Frequency-Partition-Sample" in
  Alcotest.(check string) "fps r1" "-" r1;
  Alcotest.(check string) "fps r2" "Partial Stats." r2

(* The negative side of Table 1: every strategy, deprived of each
   structure it requires, must refuse to run with a typed error naming
   exactly that structure — never a generic failure, never silence. *)
let test_missing_structure_matrix () =
  let a = Strategy.all_available in
  let no_left_index = { a with Strategy.left_index = false } in
  let no_right_access = { a with Strategy.right_index = false; right_stats = false } in
  let no_right_stats = { a with Strategy.right_stats = false } in
  let no_histogram = { a with Strategy.right_histogram = false } in
  let no_right_index = { a with Strategy.right_index = false } in
  (* strategy, crippled availability, exact missing-structure list *)
  let matrix =
    [
      (Strategy.Olken, no_left_index, [ "index(R1)" ]);
      (Strategy.Olken, no_right_access, [ "index(R2) or statistics(R2)" ]);
      ( Strategy.Olken,
        Strategy.nothing_available,
        [ "index(R1)"; "index(R2) or statistics(R2)" ] );
      (Strategy.Stream, no_right_access, [ "index(R2) or statistics(R2)" ]);
      (Strategy.Group, no_right_stats, [ "statistics(R2)" ]);
      (Strategy.Count_sample, no_right_stats, [ "statistics(R2)" ]);
      (Strategy.Frequency_partition, no_histogram, [ "end-biased histogram(R2)" ]);
      (Strategy.Hybrid_count, no_histogram, [ "end-biased histogram(R2)" ]);
      (Strategy.Index_sample, no_histogram, [ "end-biased histogram(R2)" ]);
      (Strategy.Index_sample, no_right_index, [ "index(R2hi)" ]);
      ( Strategy.Index_sample,
        Strategy.nothing_available,
        [ "end-biased histogram(R2)"; "index(R2hi)" ] );
    ]
  in
  List.iter
    (fun (s, availability, expected) ->
      let label = Strategy.name s in
      Alcotest.(check (list string))
        (label ^ " missing list") expected
        (Strategy.missing_structures availability s);
      match Strategy.require_structures availability s with
      | () -> Alcotest.failf "%s ran without %s" label (List.hd expected)
      | exception Strategy.Missing_structure { strategy; structure } ->
          Alcotest.(check string) (label ^ " error names the strategy") label strategy;
          Alcotest.(check string)
            (label ^ " error names the structure")
            (List.hd expected) structure)
    matrix;
  (* Partial deprivation that leaves an alternative must still run:
     Index/Stats. requirements accept either structure. *)
  List.iter
    (fun availability ->
      List.iter
        (fun s ->
          Alcotest.(check (list string))
            (Strategy.name s ^ " satisfied by the surviving structure")
            []
            (Strategy.missing_structures availability s))
        [ Strategy.Olken; Strategy.Stream ])
    [ no_right_index; no_right_stats ];
  (* And the two poles: everything runs fully equipped; only Naive
     runs bare. *)
  List.iter
    (fun s ->
      Alcotest.(check (list string)) (Strategy.name s ^ " fully equipped") []
        (Strategy.missing_structures a s))
    Strategy.all;
  List.iter
    (fun s ->
      let missing = Strategy.missing_structures Strategy.nothing_available s in
      if s = Strategy.Naive then
        Alcotest.(check (list string)) "naive needs nothing" [] missing
      else
        Alcotest.(check bool)
          (Strategy.name s ^ " cannot run bare")
          false (missing = []))
    Strategy.all

let test_of_name () =
  Alcotest.(check bool) "paper spelling" true
    (Strategy.of_name "Stream-Sample" = Some Strategy.Stream);
  Alcotest.(check bool) "short form" true (Strategy.of_name "naive" = Some Strategy.Naive);
  Alcotest.(check bool) "fps alias" true
    (Strategy.of_name "FPS" = Some Strategy.Frequency_partition);
  Alcotest.(check bool) "underscores" true
    (Strategy.of_name "hybrid_count" = Some Strategy.Hybrid_count);
  Alcotest.(check bool) "unknown" true (Strategy.of_name "bogus" = None);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        ("roundtrip " ^ Strategy.name s)
        true
        (Strategy.of_name (Strategy.name s) = Some s))
    Strategy.all

let test_reproducibility () =
  (* Same seed, same strategy -> identical sample. *)
  List.iter
    (fun s ->
      let r1 = Strategy.run (small_env ~seed:7 ()) s ~r:10 in
      let r2 = Strategy.run (small_env ~seed:7 ()) s ~r:10 in
      Array.iteri
        (fun i t ->
          Alcotest.(check bool) (Strategy.name s ^ " reproducible") true
            (Tuple.equal t r2.sample.(i)))
        r1.sample)
    Strategy.all

let suite =
  [
    Alcotest.test_case "every strategy returns r tuples" `Quick test_all_strategies_return_r;
    Alcotest.test_case "every output is a join tuple" `Quick test_all_strategies_emit_join_tuples;
    Alcotest.test_case "every strategy is WR-uniform (chi-square)" `Slow test_all_strategies_uniform;
    Alcotest.test_case "r = 0" `Quick test_r_zero;
    Alcotest.test_case "r > |J| (oversampling)" `Quick test_r_larger_than_join;
    Alcotest.test_case "empty join" `Quick test_empty_join;
    Alcotest.test_case "naive work = |J|" `Quick test_naive_work_is_full_join;
    Alcotest.test_case "stream-sample work = r (Thm 6)" `Quick test_stream_sample_work_is_r;
    Alcotest.test_case "olken rejections happen" `Quick test_olken_produces_r_with_rejections;
    Alcotest.test_case "olken iterations match Thm 5" `Slow test_olken_iteration_count_matches_theorem5;
    Alcotest.test_case "group-sample work matches Thm 7" `Slow test_group_sample_work_matches_theorem7;
    Alcotest.test_case "FPS partition bookkeeping" `Quick test_fps_partition_bookkeeping;
    Alcotest.test_case "FPS beats naive under skew" `Quick test_fps_work_below_naive_under_skew;
    Alcotest.test_case "index-sample work matches Thm 9" `Quick test_index_sample_work_matches_theorem9;
    Alcotest.test_case "count-sample work = scans + r" `Quick test_count_sample_scans_not_joins;
    Alcotest.test_case "group-sample detects stale stats" `Quick test_group_sample_stale_stats_fails;
    Alcotest.test_case "count-sample detects overstated stats" `Quick test_count_sample_overstated_stats_fails;
    Alcotest.test_case "foreign-key join" `Quick test_foreign_key_join;
    Alcotest.test_case "WoR variant yields distinct tuples" `Quick test_run_wor_distinct;
    Alcotest.test_case "table 1 requirements" `Quick test_table1;
    Alcotest.test_case "missing-structure matrix" `Quick test_missing_structure_matrix;
    Alcotest.test_case "strategy name parsing" `Quick test_of_name;
    Alcotest.test_case "seeded reproducibility" `Quick test_reproducibility;
  ]

(* The telemetry subsystem: JSON emit/parse round-trips, registry
   semantics (counters, gauges, log-bucketed histograms, exporters),
   trace well-formedness (the emitted Chrome Trace document parses
   back), span nesting under the pooled runtime at widths 1/2/4, and
   the disabled hot path staying allocation-free.

   A second suite, obs_artifacts, validates telemetry files produced by
   the real CLI (rsj trace / rsj metrics / RSJ_TRACE=… rsj verify):
   the @obs and @conformance aliases point RSJ_TRACE_CHECK /
   RSJ_METRICS_CHECK at the artifacts; with the variables unset the
   suite passes vacuously. *)

module Obs = Rsj_obs
module Strategy = Rsj_core.Strategy
module Zipf_tables = Rsj_workload.Zipf_tables

let json = Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Obs.Json.to_string j)) ( = )

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("s", Str "a\"b\\c\nd");
          ("i", Int (-42));
          ("f", Float 1.5);
          ("whole", Float 3.);
          ("null", Null);
          ("flags", List [ Bool true; Bool false ]);
          ("nested", Obj [ ("empty", List []); ("eobj", Obj []) ]);
        ])
  in
  (match Obs.Json.parse (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.check json "round-trip" v v'
  | Error e -> Alcotest.failf "re-parse failed: %s" e);
  (* NaN has no JSON representation: it must come back as null, not
     break the document. *)
  (match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Float nan)) with
  | Ok Obs.Json.Null -> ()
  | Ok other -> Alcotest.failf "NaN serialized to %s" (Obs.Json.to_string other)
  | Error e -> Alcotest.failf "NaN document unparseable: %s" e);
  (* Integral floats keep their .0 so they stay floats on re-parse. *)
  (match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Float 2.)) with
  | Ok (Obs.Json.Float 2.) -> ()
  | Ok other -> Alcotest.failf "Float 2. re-parsed as %s" (Obs.Json.to_string other)
  | Error e -> Alcotest.failf "float re-parse failed: %s" e)

let test_json_parser () =
  (match Obs.Json.parse {| {"u":"Aé","n":[1,2.5,-3e2]} |} with
  | Ok v ->
      Alcotest.(check (option json)) "unicode escapes decode to UTF-8"
        (Some (Obs.Json.Str "A\xc3\xa9"))
        (Obs.Json.member "u" v);
      Alcotest.(check (option json)) "int vs float discrimination"
        (Some Obs.Json.(List [ Int 1; Float 2.5; Float (-300.) ]))
        (Obs.Json.member "n" v)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Obs.Json.parse bad with
      | Ok v -> Alcotest.failf "accepted %S as %s" bad (Obs.Json.to_string v)
      | Error _ -> ())
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\":}"; "" ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_bucket_boundaries () =
  let b = Obs.Registry.default_buckets in
  Alcotest.(check int) "30 bounds" 30 (Array.length b);
  Alcotest.(check (float 1e-12)) "first bound is 1us" 1e-6 b.(0);
  Alcotest.(check (float 1e-9)) "bounds double" (2. *. b.(10)) b.(11);
  (* v <= bound picks the bucket; past the last bound is the +Inf slot. *)
  Alcotest.(check int) "0 in first bucket" 0 (Obs.Registry.bucket_index 0.);
  Alcotest.(check int) "exact bound stays in its bucket" 0 (Obs.Registry.bucket_index 1e-6);
  Alcotest.(check int) "just above a bound moves up" 1 (Obs.Registry.bucket_index 1.0000001e-6);
  Alcotest.(check int) "+Inf slot" 30 (Obs.Registry.bucket_index 1e9);
  Alcotest.(check int) "custom ladder" 2
    (Obs.Registry.bucket_index ~buckets:[| 1.; 2.; 4. |] 3.)

let test_counters_and_gauges () =
  let c = Obs.Registry.counter ~help:"t" "rsjtest_counter_total" in
  Alcotest.(check int) "fresh counter" 0 (Obs.Registry.value c);
  Obs.Registry.incr c;
  Obs.Registry.add c 41;
  Alcotest.(check int) "incr+add" 42 (Obs.Registry.value c);
  (* The same (name, labels) must return the same cell. *)
  let c' = Obs.Registry.counter "rsjtest_counter_total" in
  Obs.Registry.incr c';
  Alcotest.(check int) "memoized handle" 43 (Obs.Registry.value c);
  (* Distinct labels are distinct series. *)
  let cl = Obs.Registry.counter ~labels:[ ("k", "v") ] "rsjtest_counter_total" in
  Alcotest.(check int) "labeled series independent" 0 (Obs.Registry.value cl);
  let g = Obs.Registry.gauge "rsjtest_gauge" in
  Obs.Registry.set_gauge g 2.5;
  Alcotest.(check (float 0.)) "gauge" 2.5 (Obs.Registry.gauge_value g);
  (* Re-registering a name as a different type is a bug, loudly. *)
  Alcotest.(check bool) "type mismatch raises" true
    (try
       ignore (Obs.Registry.gauge "rsjtest_counter_total");
       false
     with Invalid_argument _ -> true)

let test_histogram_quantiles () =
  let h = Obs.Registry.histogram ~buckets:[| 1.; 2.; 4.; 8. |] "rsjtest_hist_seconds" in
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (Obs.Registry.quantile h 0.5));
  List.iter (Obs.Registry.observe h) [ 0.5; 1.5; 1.6; 3.; 100. ];
  Alcotest.(check int) "count" 5 (Obs.Registry.observed_count h);
  Alcotest.(check (float 1e-9)) "sum" 106.6 (Obs.Registry.observed_sum h);
  (* Cumulative counts by bucket: 1,3,4,4,(+Inf)5. p50 target 2.5 lands
     in the le=2 bucket; the +Inf overflow reports the top finite
     bound. *)
  Alcotest.(check (float 0.)) "p50" 2. (Obs.Registry.quantile h 0.5);
  Alcotest.(check (float 0.)) "p99 hits overflow = top bound" 8. (Obs.Registry.quantile h 0.99)

let test_prometheus_export () =
  let c = Obs.Registry.counter ~help:"help text" ~labels:[ ("q", {|a"b\c|}) ] "rsjtest_promc_total" in
  Obs.Registry.add c 7;
  let h = Obs.Registry.histogram ~buckets:[| 0.1; 1. |] "rsjtest_promh_seconds" in
  Obs.Registry.observe h 0.05;
  Obs.Registry.observe h 50.;
  let text = Obs.Registry.to_prometheus ~only:(String.starts_with ~prefix:"rsjtest_prom") () in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  (* Structural well-formedness: every non-comment line is
     "name{labels} value" with a numeric value. *)
  List.iter
    (fun line ->
      if not (String.starts_with ~prefix:"#" line) then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "no value separator in %S" line
        | Some i ->
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            if float_of_string_opt v = None then Alcotest.failf "non-numeric value in %S" line
      end)
    lines;
  let has l = List.mem l lines in
  Alcotest.(check bool) "HELP line" true (has "# HELP rsjtest_promc_total help text");
  Alcotest.(check bool) "TYPE line" true (has "# TYPE rsjtest_promc_total counter");
  Alcotest.(check bool) "label escaping" true
    (has {|rsjtest_promc_total{q="a\"b\\c"} 7|});
  Alcotest.(check bool) "cumulative buckets" true
    (has "rsjtest_promh_seconds_bucket{le=\"0.1\"} 1"
    && has "rsjtest_promh_seconds_bucket{le=\"1\"} 1"
    && has "rsjtest_promh_seconds_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "histogram count" true (has "rsjtest_promh_seconds_count 2");
  (* The filter must actually filter. *)
  Alcotest.(check bool) "only-filter excludes" true
    (not
       (String.length (Obs.Registry.to_prometheus ~only:(fun _ -> false) ()) > 0))

let test_registry_json_export () =
  let c = Obs.Registry.counter "rsjtest_jsonc_total" in
  Obs.Registry.add c 3;
  let doc = Obs.Registry.to_json ~only:(String.starts_with ~prefix:"rsjtest_jsonc") () in
  match Obs.Json.parse (Obs.Json.to_string doc) with
  | Error e -> Alcotest.failf "registry JSON unparseable: %s" e
  | Ok v -> (
      match Obs.Json.member "rsjtest_jsonc_total" v with
      | None -> Alcotest.fail "family missing from JSON export"
      | Some fam ->
          Alcotest.(check (option json)) "type tag" (Some (Obs.Json.Str "counter"))
            (Obs.Json.member "type" fam))

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let with_tracing f =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.Trace.clear ();
  Fun.protect f ~finally:(fun () ->
      Obs.Trace.clear ();
      Obs.set_enabled was)

let test_trace_json_wellformed () =
  with_tracing @@ fun () ->
  Obs.Trace.with_span ~cat:"test" ~args:[ ("k", Obs.Json.Int 1) ] "outer" (fun () ->
      Obs.Trace.with_span ~cat:"test" "inner" (fun () -> ());
      Obs.Trace.instant ~cat:"test" "mark");
  match Obs.Json.parse (Obs.Json.to_string (Obs.Trace.to_json ())) with
  | Error e -> Alcotest.failf "trace document unparseable: %s" e
  | Ok doc -> (
      match Obs.Json.member "traceEvents" doc with
      | Some (Obs.Json.List evs) ->
          let name e =
            match Obs.Json.member "name" e with Some (Obs.Json.Str s) -> s | _ -> "?"
          in
          let names = List.map name evs in
          List.iter
            (fun n ->
              Alcotest.(check bool) (n ^ " present") true (List.mem n names))
            [ "thread_name"; "outer"; "inner"; "mark" ];
          (* Every event carries the Chrome-required fields. *)
          List.iter
            (fun e ->
              List.iter
                (fun k ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s has %s" (name e) k)
                    true
                    (Obs.Json.member k e <> None))
                (if name e = "thread_name" then [ "ph"; "pid"; "tid" ]
                 else [ "ph"; "pid"; "tid"; "ts" ]))
            evs
      | _ -> Alcotest.fail "traceEvents missing or not a list")

let small_env ?(seed = 0xAB) () =
  let pair = Zipf_tables.make_pair ~seed ~n1:40 ~n2:80 ~z1:1. ~z2:2. ~domain:6 () in
  Strategy.make_env ~seed ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner
    ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()

let span_end (e : Obs.Trace.event) = e.Obs.Trace.ts +. e.Obs.Trace.dur

let test_span_nesting_under_pool () =
  List.iter
    (fun domains ->
      with_tracing @@ fun () ->
      ignore (Rsj_parallel.run (small_env ()) Strategy.Stream ~r:8 ~domains);
      let events = Obs.Trace.events () in
      let by_name n = List.filter (fun e -> e.Obs.Trace.name = n) events in
      let sched =
        match by_name "chunk_scheduler.run" with
        | [ s ] -> s
        | l -> Alcotest.failf "expected 1 scheduler span at d=%d, got %d" domains (List.length l)
      in
      let strat =
        match by_name "strategy.Stream-Sample" with
        | [ s ] -> s
        | l -> Alcotest.failf "expected 1 strategy span at d=%d, got %d" domains (List.length l)
      in
      Alcotest.(check bool)
        (Printf.sprintf "scheduler nested in strategy span (d=%d)" domains)
        true
        (sched.Obs.Trace.ts >= strat.Obs.Trace.ts && span_end sched <= span_end strat);
      (* Per-chunk spans are multi-domain only: a single-domain scan
         runs its chunks inline and records just the scheduler span, so
         the serving path (domains=1) never pays per-chunk clock reads. *)
      let chunks = by_name "chunk" in
      Alcotest.(check bool)
        (Printf.sprintf "chunk spans %s (d=%d)"
           (if domains > 1 then "recorded" else "absent")
           domains)
        (domains > 1) (chunks <> []);
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "chunk span inside scheduler span (d=%d)" domains)
            true
            (c.Obs.Trace.ts >= sched.Obs.Trace.ts && span_end c <= span_end sched))
        chunks;
      if domains > 1 then begin
        let jobs = by_name "pool.job" in
        Alcotest.(check bool)
          (Printf.sprintf "pool.job spans at d=%d" domains)
          true (jobs <> []);
        Alcotest.(check bool)
          (Printf.sprintf "some job ran on a worker domain (d=%d)" domains)
          true
          (List.exists (fun e -> e.Obs.Trace.tid <> 0) jobs)
      end)
    [ 1; 2; 4 ]

let test_disabled_path_allocation_free () =
  Obs.set_enabled false;
  let body = fun () -> () in
  (* Warm both code paths (DLS, closures) before measuring. *)
  for _ = 1 to 10 do
    Obs.Trace.with_span "warm" body
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.Trace.with_span "off" body
  done;
  let delta = Gc.minor_words () -. before in
  (* One measurement's float boxing is noise; 10k traced spans would
     allocate tens of thousands of words. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled spans allocate nothing (%.0f words for 10k calls)" delta)
    true (delta < 256.)

(* ------------------------------------------------------------------ *)
(* CLI artifacts (obs_artifacts): driven by the @obs / @conformance    *)
(* aliases via RSJ_TRACE_CHECK / RSJ_METRICS_CHECK                     *)

let env_paths var =
  match Sys.getenv_opt var with
  | None | Some "" -> []
  | Some s -> String.split_on_char ':' s |> List.filter (fun p -> p <> "")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_trace_artifacts () =
  match env_paths "RSJ_TRACE_CHECK" with
  | [] -> print_endline "RSJ_TRACE_CHECK unset; nothing to validate"
  | paths ->
      List.iter
        (fun path ->
          match Obs.Json.parse (read_file path) with
          | Error e -> Alcotest.failf "%s: invalid JSON: %s" path e
          | Ok doc -> (
              match Obs.Json.member "traceEvents" doc with
              | Some (Obs.Json.List evs) ->
                  Alcotest.(check bool)
                    (path ^ ": has events") true
                    (List.length evs > 0);
                  let cats =
                    List.filter_map
                      (fun e ->
                        match Obs.Json.member "cat" e with
                        | Some (Obs.Json.Str c) -> Some c
                        | _ -> None)
                      evs
                  in
                  (* The acceptance bar: pool, chunk-scheduler and
                     strategy spans all present in a CLI-produced
                     trace. *)
                  List.iter
                    (fun cat ->
                      Alcotest.(check bool)
                        (Printf.sprintf "%s: %s spans present" path cat)
                        true (List.mem cat cats))
                    [ "pool"; "chunk"; "strategy" ]
              | _ -> Alcotest.failf "%s: traceEvents missing" path))
        paths

let test_metrics_artifacts () =
  match env_paths "RSJ_METRICS_CHECK" with
  | [] -> print_endline "RSJ_METRICS_CHECK unset; nothing to validate"
  | paths ->
      List.iter
        (fun path ->
          let text = read_file path in
          let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
          Alcotest.(check bool) (path ^ ": non-empty") true (lines <> []);
          List.iter
            (fun line ->
              if not (String.starts_with ~prefix:"#" line) then
                match String.rindex_opt line ' ' with
                | None -> Alcotest.failf "%s: malformed line %S" path line
                | Some i ->
                    let v = String.sub line (i + 1) (String.length line - i - 1) in
                    if float_of_string_opt v = None then
                      Alcotest.failf "%s: non-numeric value in %S" path line)
            lines;
          List.iter
            (fun family ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s exported" path family)
                true
                (List.exists (String.starts_with ~prefix:family) lines))
            [ "rsj_pool_workers_spawned_total"; "rsj_chunk_claims_total"; "rsj_strategy_run_seconds" ])
        paths

let suite =
  [
    Alcotest.test_case "json to_string/parse round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parser accepts/rejects" `Quick test_json_parser;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "histogram observe and quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "prometheus export well-formed" `Quick test_prometheus_export;
    Alcotest.test_case "registry JSON export parses" `Quick test_registry_json_export;
    Alcotest.test_case "trace document parses back" `Quick test_trace_json_wellformed;
    Alcotest.test_case "span nesting under the pool (d=1,2,4)" `Quick test_span_nesting_under_pool;
    Alcotest.test_case "disabled path allocates nothing" `Quick test_disabled_path_allocation_free;
  ]

let artifacts_suite =
  [
    Alcotest.test_case "CLI trace artifacts parse" `Quick test_trace_artifacts;
    Alcotest.test_case "CLI metrics artifacts parse" `Quick test_metrics_artifacts;
  ]

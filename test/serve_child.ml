(* Daemon helper for the serve suite: [serve_child.exe SOCK SNAPSHOT
   BUDGET PLANE]. The tests exec this instead of forking because
   OCaml 5 forbids [Unix.fork] in any process that has ever spawned a
   domain — and by the time the serve suite runs inside the monolithic
   test binary, the parallel suites have. BUDGET <= 0 keeps the
   default admission cap; PLANE ([boxed] or [int]) pins the column
   data plane before any relation is built, so served samples are
   byte-comparable to the parent's in-process runs on either plane. *)

module Server = Rsj_server.Server
module Column = Rsj_relation.Column

let () =
  match Sys.argv with
  | [| _; sock; snapshot; budget; plane |] ->
      Column.set_mode (if plane = "int" then Column.Int_keys else Column.Boxed);
      let base = Server.default_config (Server.Unix_path sock) in
      let config =
        {
          base with
          Server.snapshot_path = Some snapshot;
          Server.max_queued_work =
            (match int_of_string_opt budget with
            | Some b when b > 0 -> b
            | _ -> base.Server.max_queued_work);
        }
      in
      (try Server.run config with _ -> ());
      exit 0
  | _ ->
      prerr_endline "usage: serve_child.exe SOCK SNAPSHOT BUDGET PLANE";
      exit 2

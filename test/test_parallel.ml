open Rsj_relation
open Rsj_core
module Zipf_tables = Rsj_workload.Zipf_tables
module Prng = Rsj_util.Prng

(* Same small skewed instance as Test_strategies: the full join is
   cheap to enumerate, so the parallel sample's law can be chi-square
   tested against it cell by cell. *)
let small_env ?(seed = 0xAB) ?(z1 = 1.) ?(z2 = 2.) () =
  let pair = Zipf_tables.make_pair ~seed ~n1:40 ~n2:80 ~z1 ~z2 ~domain:6 () in
  Strategy.make_env ~seed ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
    ~right_key:Zipf_tables.col2 ()

let full_join env =
  let plan =
    Rsj_exec.Plan.Join
      {
        Rsj_exec.Plan.algorithm = Rsj_exec.Plan.Hash;
        left = Rsj_exec.Plan.Scan (Strategy.env_left env);
        right = Rsj_exec.Plan.Scan (Strategy.env_right env);
        left_key = Zipf_tables.col2;
        right_key = Zipf_tables.col2;
      }
  in
  Array.of_list (Rsj_exec.Plan.collect plan)

(* Every strategy now has a parallel execution. *)
let parallel_strategies = Strategy.all

(* Domain counts under test; RSJ_DOMAINS ("1" or "2,4") narrows the
   matrix so one binary can be swept per-domain-count by the
   parallel-equiv alias. *)
let domain_counts =
  match Sys.getenv_opt "RSJ_DOMAINS" with
  | Some s when String.trim s <> "" -> (
      match
        String.split_on_char ',' s |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
      with
      | [] -> [ 1; 2; 4 ]
      | l -> l)
  | _ -> [ 1; 2; 4 ]

let test_all_parallelizable () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Strategy.name s ^ " is parallelizable")
        true
        (Rsj_parallel.is_parallelizable s))
    Strategy.all

(* ------------------------------------------------------------------ *)
(* Parallel strategy execution                                         *)

let test_parallel_returns_r () =
  let env = small_env () in
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          let res = Rsj_parallel.run env s ~r:25 ~domains:d in
          Alcotest.(check int)
            (Printf.sprintf "%s domains=%d returns r" (Strategy.name s) d)
            25 (Array.length res.Strategy.sample))
        domain_counts)
    parallel_strategies

let test_parallel_emits_join_tuples () =
  let env = small_env () in
  let members = Hashtbl.create 1024 in
  Array.iter (fun t -> Hashtbl.replace members t ()) (full_join env);
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          let res = Rsj_parallel.run env s ~r:40 ~domains:d in
          Array.iter
            (fun t ->
              Alcotest.(check bool)
                (Printf.sprintf "%s domains=%d emits only join tuples" (Strategy.name s) d)
                true (Hashtbl.mem members t))
            res.Strategy.sample)
        domain_counts)
    parallel_strategies

(* The headline equivalence: the parallel sample obeys the same uniform
   law over J as the sequential one, at every domain count. Runs on the
   shared distribution-test kernel (bucketed chi-square, Bonferroni
   threshold, seeded retries) instead of a hand-picked p cutoff. *)
let test_parallel_uniform () =
  let pair = Zipf_tables.make_pair ~seed:0xAB ~n1:40 ~n2:80 ~z1:1. ~z2:2. ~domain:6 () in
  let universe = full_join (small_env ()) in
  (* Stream/Group cover the chunked-reservoir path, Olken the
     speculative path, Frequency-Partition the chunked hi/lo routing;
     the @conformance matrix sweeps the rest. Only domains > 1 are
     tested here: domains = 1 runs the same chunk cut and is
     bit-identical to the wider widths (see test_pool), and the
     sequential engine's law is gated by test_strategies. One
     domain count per run keeps the suite fast — the default is the
     smallest parallel width, @parallel-equiv re-runs the suite at
     RSJ_DOMAINS = 2 and 4, and the @conformance matrix chi-squares
     every strategy at domains {1, 2, 4} on each runtest anyway. *)
  let strategies =
    [ Strategy.Stream; Strategy.Group; Strategy.Olken; Strategy.Frequency_partition ]
  in
  let domain_counts =
    match List.filter (fun d -> d > 1) domain_counts with
    | [] -> [ 2 ]
    | l -> [ List.fold_left min max_int l ]
  in
  let checks = List.length domain_counts * List.length strategies in
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          let outcome =
            Rsj_verify.Conformance.wr_uniformity
              ~config:{ Rsj_verify.Kernel.default with comparisons = checks }
              ~trials:120 ~universe
              ~draw:(fun ~attempt ->
                let env =
                  Strategy.make_env
                    ~seed:(0xAB + (97 * attempt))
                    ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
                    ~right_key:Zipf_tables.col2 ()
                in
                fun () -> (Rsj_parallel.run env s ~r:20 ~domains:d).Strategy.sample)
              ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s domains=%d uniform over J (p=%.5f, attempts=%d)" (Strategy.name s)
               d outcome.Rsj_verify.Kernel.p_value outcome.Rsj_verify.Kernel.attempts)
            true outcome.Rsj_verify.Kernel.passed)
        domain_counts)
    strategies

let tiny_schema_rel name vals =
  Relation.of_tuples ~name Zipf_tables.schema
    (List.mapi (fun i v -> [| Value.Int i; Value.Int v; Value.str "p" |]) vals)

let tiny_env ~left ~right =
  Strategy.make_env ~left:(tiny_schema_rel "L" left) ~right:(tiny_schema_rel "R" right)
    ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()

(* r = 0 must be a no-op for every strategy, sequential and parallel —
   including on degenerate inputs (empty R2, empty R1, empty join)
   where a strategy that inspects the input first could spin its whole
   rejection budget (Olken) or trip an emptiness guard. *)
let test_parallel_r_zero () =
  let check_r0 label env =
    List.iter
      (fun s ->
        let seq = Strategy.run env s ~r:0 in
        Alcotest.(check int)
          (Printf.sprintf "%s r=0 sequential (%s)" (Strategy.name s) label)
          0
          (Array.length seq.Strategy.sample);
        List.iter
          (fun d ->
            let res = Rsj_parallel.run env s ~r:0 ~domains:d in
            Alcotest.(check int)
              (Printf.sprintf "%s r=0 domains=%d (%s)" (Strategy.name s) d label)
              0
              (Array.length res.Strategy.sample))
          domain_counts)
      Strategy.all
  in
  check_r0 "skewed pair" (small_env ());
  check_r0 "empty R2" (tiny_env ~left:[ 1; 2 ] ~right:[]);
  check_r0 "empty R1" (tiny_env ~left:[] ~right:[ 1; 1; 2 ]);
  check_r0 "empty join" (tiny_env ~left:[ 1; 2 ] ~right:[ 3; 4 ])

let test_parallel_more_domains_than_rows () =
  (* Chunks beyond the relation's size don't exist; idle domains must
     exit cleanly and the merge must cope. *)
  let env = tiny_env ~left:[ 1; 2 ] ~right:[ 1; 1; 2 ] in
  List.iter
    (fun s ->
      let res = Rsj_parallel.run env s ~r:5 ~domains:8 in
      Alcotest.(check int) (Strategy.name s ^ " domains > n1") 5
        (Array.length res.Strategy.sample))
    parallel_strategies

let test_parallel_deterministic () =
  (* Chunk state depends only on the chunk index, so the sample is
     reproducible at every domain count — except Olken above one
     domain, whose speculative ticketing is timing-dependent (the law
     is covered by the chi-square test above instead). *)
  List.iter
    (fun s ->
      let domains = if s = Strategy.Olken then [ 1 ] else domain_counts in
      List.iter
        (fun d ->
          let r1 = Rsj_parallel.run (small_env ~seed:7 ()) s ~r:10 ~domains:d in
          let r2 = Rsj_parallel.run (small_env ~seed:7 ()) s ~r:10 ~domains:d in
          Array.iteri
            (fun i t ->
              Alcotest.(check bool)
                (Printf.sprintf "%s domains=%d reproducible" (Strategy.name s) d)
                true
                (Tuple.equal t r2.Strategy.sample.(i)))
            r1.Strategy.sample)
        domains)
    parallel_strategies

let test_parallel_domains_zero_is_sequential () =
  (* domains = 0 is the explicit sequential escape: exactly
     Strategy.run, same env seed, identical sample. (domains = 1 runs
     the chunked path on the caller so its output matches the wider
     widths instead — see test_pool.) *)
  List.iter
    (fun s ->
      let seq = Strategy.run (small_env ~seed:5 ()) s ~r:12 in
      let par = Rsj_parallel.run (small_env ~seed:5 ()) s ~r:12 ~domains:0 in
      Alcotest.(check int) (Strategy.name s ^ " d=0 size") (Array.length seq.Strategy.sample)
        (Array.length par.Strategy.sample);
      Array.iteri
        (fun i t ->
          Alcotest.(check bool) (Strategy.name s ^ " d=0 identical") true
            (Tuple.equal t par.Strategy.sample.(i)))
        seq.Strategy.sample)
    parallel_strategies

(* ------------------------------------------------------------------ *)
(* Parallel without-replacement                                        *)

let test_parallel_wor_basics () =
  let env = small_env () in
  let members = Hashtbl.create 1024 in
  Array.iter (fun t -> Hashtbl.replace members t ()) (full_join env);
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          let res = Rsj_parallel.run_wor env s ~r:25 ~domains:d in
          Alcotest.(check int)
            (Printf.sprintf "%s WoR domains=%d returns r" (Strategy.name s) d)
            25
            (Array.length res.Strategy.sample);
          let distinct =
            List.sort_uniq compare
              (Array.to_list (Array.map Tuple.hash res.Strategy.sample))
          in
          Alcotest.(check int)
            (Printf.sprintf "%s WoR domains=%d distinct" (Strategy.name s) d)
            25 (List.length distinct);
          Array.iter
            (fun t ->
              Alcotest.(check bool)
                (Printf.sprintf "%s WoR domains=%d emits only join tuples" (Strategy.name s) d)
                true (Hashtbl.mem members t))
            res.Strategy.sample)
        domain_counts)
    parallel_strategies

let test_parallel_wor_clamps_to_join_size () =
  (* |J| = 3 here: r beyond the join must clamp, and r = 0 / domains on
     an empty join must no-op, at every width. *)
  List.iter
    (fun d ->
      let res =
        Rsj_parallel.run_wor (tiny_env ~left:[ 1; 2 ] ~right:[ 1; 1; 2 ]) Strategy.Naive ~r:10
          ~domains:d
      in
      Alcotest.(check int)
        (Printf.sprintf "domains=%d clamps to |J|" d)
        3
        (Array.length res.Strategy.sample);
      let empty =
        Rsj_parallel.run_wor (tiny_env ~left:[ 1; 2 ] ~right:[ 3; 4 ]) Strategy.Stream ~r:5
          ~domains:d
      in
      Alcotest.(check int) (Printf.sprintf "domains=%d empty join" d) 0
        (Array.length empty.Strategy.sample))
    domain_counts

let test_parallel_wor_deterministic () =
  List.iter
    (fun s ->
      let domains = if s = Strategy.Olken then [ 1 ] else domain_counts in
      List.iter
        (fun d ->
          let r1 = Rsj_parallel.run_wor (small_env ~seed:7 ()) s ~r:10 ~domains:d in
          let r2 = Rsj_parallel.run_wor (small_env ~seed:7 ()) s ~r:10 ~domains:d in
          Alcotest.(check int)
            (Printf.sprintf "%s WoR domains=%d size" (Strategy.name s) d)
            (Array.length r1.Strategy.sample)
            (Array.length r2.Strategy.sample);
          Array.iteri
            (fun i t ->
              Alcotest.(check bool)
                (Printf.sprintf "%s WoR domains=%d reproducible" (Strategy.name s) d)
                true
                (Tuple.equal t r2.Strategy.sample.(i)))
            r1.Strategy.sample)
        domains)
    parallel_strategies

let test_parallel_wor_domains_zero_is_sequential () =
  List.iter
    (fun s ->
      let seq = Strategy.run_wor (small_env ~seed:5 ()) s ~r:12 in
      let par = Rsj_parallel.run_wor (small_env ~seed:5 ()) s ~r:12 ~domains:0 in
      Alcotest.(check int) (Strategy.name s ^ " WoR d=0 size")
        (Array.length seq.Strategy.sample)
        (Array.length par.Strategy.sample);
      Array.iteri
        (fun i t ->
          Alcotest.(check bool) (Strategy.name s ^ " WoR d=0 identical") true
            (Tuple.equal t par.Strategy.sample.(i)))
        seq.Strategy.sample)
    parallel_strategies

let test_parallel_metrics_sum () =
  (* tuples_scanned covers every R1 tuple exactly once regardless of
     the chunking (Group and Naive also scan R2 once; Index-Sample
     only R1). *)
  let env = small_env () in
  let n1 = Relation.cardinality (Strategy.env_left env) in
  let n2 = Relation.cardinality (Strategy.env_right env) in
  let expectations =
    [
      (Strategy.Stream, n1, "n1");
      (Strategy.Group, n1 + n2, "n1+n2");
      (Strategy.Naive, n1 + n2, "n1+n2");
      (Strategy.Index_sample, n1, "n1");
      (Strategy.Frequency_partition, n1 + n2, "n1+n2");
    ]
  in
  List.iter
    (fun d ->
      List.iter
        (fun (s, expected, what) ->
          let res = Rsj_parallel.run env s ~r:20 ~domains:d in
          Alcotest.(check int)
            (Printf.sprintf "%s domains=%d scans %s" (Strategy.name s) d what)
            expected res.Strategy.metrics.Rsj_exec.Metrics.tuples_scanned)
        expectations)
    domain_counts

(* ------------------------------------------------------------------ *)
(* Chunk-queue scheduler                                               *)

module Chunk_scheduler = Rsj_parallel.Chunk_scheduler

let test_scheduler_results_in_order () =
  List.iter
    (fun domains ->
      List.iter
        (fun chunks ->
          let out, stats = Chunk_scheduler.run ~domains ~chunks ~task:(fun i -> i * i) () in
          Alcotest.(check (array int))
            (Printf.sprintf "d=%d chunks=%d results in chunk order" domains chunks)
            (Array.init chunks (fun i -> i * i))
            out;
          Alcotest.(check int)
            (Printf.sprintf "d=%d chunks=%d all chunks handed out" domains chunks)
            chunks stats.Chunk_scheduler.chunks;
          Alcotest.(check int)
            (Printf.sprintf "d=%d chunks=%d claims sum to chunks" domains chunks)
            chunks
            (Array.fold_left ( + ) 0 stats.Chunk_scheduler.claims);
          Alcotest.(check int)
            (Printf.sprintf "d=%d chunks=%d one claim slot per domain" domains chunks)
            domains
            (Array.length stats.Chunk_scheduler.claims))
        [ 0; 1; 7; 64 ])
    [ 1; 2; 4 ]

let test_scheduler_rejects_bad_args () =
  let rejects f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "domains=0 rejected" true
    (rejects (fun () -> Chunk_scheduler.run ~domains:0 ~chunks:1 ~task:(fun i -> i) ()));
  Alcotest.(check bool) "chunks<0 rejected" true
    (rejects (fun () -> Chunk_scheduler.run ~domains:2 ~chunks:(-1) ~task:(fun i -> i) ()));
  Alcotest.(check bool) "run chunk_size<=0 rejected" true
    (rejects (fun () ->
         Rsj_parallel.run ~chunk_size:0 (small_env ()) Strategy.Stream ~r:1 ~domains:2))

let test_scheduler_default_chunk_size () =
  (* Only meaningful when the env override is not set (the test runner
     never sets it). *)
  match Sys.getenv_opt "RSJ_CHUNK_SIZE" with
  | Some _ -> ()
  | None ->
      Alcotest.(check int) "small n floors at 1" 1
        (Chunk_scheduler.default_chunk_size ~n:3);
      Alcotest.(check int) "mid n ~ n/16" 625
        (Chunk_scheduler.default_chunk_size ~n:10_000);
      Alcotest.(check int) "huge n caps at 4096" 4096
        (Chunk_scheduler.default_chunk_size ~n:10_000_000)

let test_explicit_chunk_size_same_sample () =
  (* chunk_size changes the schedule, never the sample: per-chunk state
     is split by chunk index, and merges are distribution-preserving —
     but bit-identity across chunk sizes is NOT promised (different
     split trees), so this checks determinism within each size and the
     static-shard size (ceil n/d) specifically. *)
  List.iter
    (fun cs ->
      let a = Rsj_parallel.run ~chunk_size:cs (small_env ~seed:11 ()) Strategy.Naive ~r:8 ~domains:2 in
      let b = Rsj_parallel.run ~chunk_size:cs (small_env ~seed:11 ()) Strategy.Naive ~r:8 ~domains:2 in
      Alcotest.(check int) (Printf.sprintf "chunk_size=%d size" cs) 8
        (Array.length a.Strategy.sample);
      Array.iteri
        (fun i t ->
          Alcotest.(check bool)
            (Printf.sprintf "chunk_size=%d reproducible" cs)
            true
            (Tuple.equal t b.Strategy.sample.(i)))
        a.Strategy.sample)
    [ 1; 7; 20; 40 ]

(* ------------------------------------------------------------------ *)
(* Reservoir merges                                                    *)

(* Degenerate r = 1 and saturated r = n reservoirs exercise different
   merge branches than the mid-size case, so every law is checked at
   all three. *)
let merge_sizes ~n ~r = [ 1; r; n ]

let test_wr_merge_mass_conservation () =
  let rng = Prng.create ~seed:3 () in
  List.iter
    (fun r ->
      let a = Reservoir.Wr.create ~r and b = Reservoir.Wr.create ~r in
      for i = 1 to 10 do
        Reservoir.Wr.feed rng a ~weight:(float_of_int i) i
      done;
      for i = 11 to 25 do
        Reservoir.Wr.feed rng b ~weight:2.5 i
      done;
      let m = Reservoir.Wr.merge rng a b in
      Alcotest.(check int) (Printf.sprintf "r=%d fed adds" r) 25 (Reservoir.Wr.fed_count m);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "r=%d weight adds" r)
        (55. +. (15. *. 2.5))
        (Reservoir.Wr.total_weight m);
      Alcotest.(check int) (Printf.sprintf "r=%d slots" r) r
        (Array.length (Reservoir.Wr.contents m)))
    (merge_sizes ~n:25 ~r:8)

let test_wr_merge_empty_side () =
  let rng = Prng.create ~seed:4 () in
  let a = Reservoir.Wr.create ~r:5 and b = Reservoir.Wr.create ~r:5 in
  List.iter (fun x -> Reservoir.Wr.feed rng a ~weight:1. x) [ 1; 2; 3 ];
  let m = Reservoir.Wr.merge rng a b in
  Alcotest.(check int) "empty B: A's slots" 5 (Array.length (Reservoir.Wr.contents m));
  Array.iter
    (fun x -> Alcotest.(check bool) "slot from A" true (x >= 1 && x <= 3))
    (Reservoir.Wr.contents m);
  let m' = Reservoir.Wr.merge rng b a in
  Alcotest.(check int) "empty A: B's slots" 5 (Array.length (Reservoir.Wr.contents m'));
  let e = Reservoir.Wr.merge rng (Reservoir.Wr.create ~r:5) (Reservoir.Wr.create ~r:5) in
  Alcotest.(check int) "both empty: no slots" 0 (Array.length (Reservoir.Wr.contents e))

let test_wr_merge_r_zero () =
  let rng = Prng.create ~seed:5 () in
  let a = Reservoir.Wr.create ~r:0 and b = Reservoir.Wr.create ~r:0 in
  Reservoir.Wr.feed rng a ~weight:2. 1;
  Reservoir.Wr.feed rng b ~weight:3. 2;
  let m = Reservoir.Wr.merge rng a b in
  Alcotest.(check int) "no slots" 0 (Array.length (Reservoir.Wr.contents m));
  Alcotest.(check (float 1e-9)) "mass still tracked" 5. (Reservoir.Wr.total_weight m)

let test_wr_merge_mismatched_r () =
  let rng = Prng.create ~seed:6 () in
  Alcotest.(check bool) "mismatched r rejected" true
    (try
       ignore (Reservoir.Wr.merge rng (Reservoir.Wr.create ~r:3) (Reservoir.Wr.create ~r:4));
       false
     with Invalid_argument _ -> true)

let test_wr_merge_slot_law () =
  (* A carries 3x B's mass: merged slots should come from A with
     probability 0.75, at every reservoir size (n = 2 elements fed in
     total). 400 trials x r slots, 3.5-sigma tolerance per size. *)
  let rng = Prng.create ~seed:7 () in
  let trials = 400 in
  List.iter
    (fun r ->
      let from_a = ref 0 in
      for _ = 1 to trials do
        let a = Reservoir.Wr.create ~r and b = Reservoir.Wr.create ~r in
        Reservoir.Wr.feed rng a ~weight:3. 1;
        Reservoir.Wr.feed rng b ~weight:1. 2;
        let m = Reservoir.Wr.merge rng a b in
        Array.iter (fun x -> if x = 1 then incr from_a) (Reservoir.Wr.contents m)
      done;
      let n = float_of_int (trials * r) in
      let phat = float_of_int !from_a /. n in
      let sigma = sqrt (0.75 *. 0.25 /. n) in
      Alcotest.(check bool)
        (Printf.sprintf "slot law r=%d: %.4f ~ 0.75" r phat)
        true
        (Float.abs (phat -. 0.75) < 3.5 *. sigma))
    (merge_sizes ~n:2 ~r:10)

let test_unit_merge () =
  let rng = Prng.create ~seed:8 () in
  let a = Reservoir.Unit.create () and b = Reservoir.Unit.create () in
  Alcotest.(check bool) "both empty" true
    (Reservoir.Unit.get (Reservoir.Unit.merge rng a b) = None);
  Reservoir.Unit.feed rng a 1;
  let m = Reservoir.Unit.merge rng a b in
  Alcotest.(check bool) "empty B keeps A" true (Reservoir.Unit.get m = Some 1);
  Alcotest.(check int) "fed adds" 1 (Reservoir.Unit.fed_count m);
  (* Weighted coin: A fed 3, B fed 1 -> A kept with probability 3/4. *)
  let trials = 800 in
  let kept_a = ref 0 in
  for _ = 1 to trials do
    let a = Reservoir.Unit.create () and b = Reservoir.Unit.create () in
    List.iter (fun x -> Reservoir.Unit.feed rng a x) [ 1; 1; 1 ];
    Reservoir.Unit.feed rng b 2;
    if Reservoir.Unit.get (Reservoir.Unit.merge rng a b) = Some 1 then incr kept_a
  done;
  let phat = float_of_int !kept_a /. float_of_int trials in
  let sigma = sqrt (0.75 *. 0.25 /. float_of_int trials) in
  Alcotest.(check bool)
    (Printf.sprintf "fed-weighted coin: %.4f ~ 0.75" phat)
    true
    (Float.abs (phat -. 0.75) < 3. *. sigma)

let test_wor_merge_invariants () =
  let rng = Prng.create ~seed:9 () in
  (* Disjoint sides: the merged WoR sample must stay duplicate-free and
     hold min(r, fed) elements — at r = 1, the working size and r = n. *)
  List.iter
    (fun r ->
      let a = Reservoir.Wor.create ~r and b = Reservoir.Wor.create ~r in
      for i = 1 to 4 do
        Reservoir.Wor.feed rng a i
      done;
      for i = 100 to 120 do
        Reservoir.Wor.feed rng b i
      done;
      let m = Reservoir.Wor.merge rng a b in
      let c = Reservoir.Wor.contents m in
      Alcotest.(check int)
        (Printf.sprintf "r=%d: min(r, fed) elements" r)
        (min r 25) (Array.length c);
      Alcotest.(check int) (Printf.sprintf "r=%d: fed adds" r) 25 (Reservoir.Wor.fed_count m);
      let distinct = List.sort_uniq compare (Array.to_list c) in
      Alcotest.(check int)
        (Printf.sprintf "r=%d: no duplicates" r)
        (min r 25) (List.length distinct))
    (merge_sizes ~n:25 ~r:6);
  (* Underfull merge: 2 + 3 fed with r = 10 keeps everything. *)
  let a = Reservoir.Wor.create ~r:10 and b = Reservoir.Wor.create ~r:10 in
  List.iter (fun x -> Reservoir.Wor.feed rng a x) [ 1; 2 ];
  List.iter (fun x -> Reservoir.Wor.feed rng b x) [ 3; 4; 5 ];
  let m = Reservoir.Wor.merge rng a b in
  Alcotest.(check (list int)) "underfull keeps all" [ 1; 2; 3; 4; 5 ]
    (List.sort compare (Array.to_list (Reservoir.Wor.contents m)));
  (* r = 0 and empty merges. *)
  let z = Reservoir.Wor.merge rng (Reservoir.Wor.create ~r:0) (Reservoir.Wor.create ~r:0) in
  Alcotest.(check int) "r=0" 0 (Array.length (Reservoir.Wor.contents z));
  let e = Reservoir.Wor.merge rng (Reservoir.Wor.create ~r:4) (Reservoir.Wor.create ~r:4) in
  Alcotest.(check int) "both empty" 0 (Array.length (Reservoir.Wor.contents e))

let test_wor_merge_membership_law () =
  (* Merge of 5-fed + 5-fed at size r: each of the 10 elements belongs
     to the merged sample with probability min(r,10)/10. Check element
     1 at r = 1 (rare), r = 4 and r = n = 10 (certain). *)
  let rng = Prng.create ~seed:10 () in
  let trials = 600 in
  List.iter
    (fun r ->
      let p = float_of_int (min r 10) /. 10. in
      let hits = ref 0 in
      for _ = 1 to trials do
        let a = Reservoir.Wor.create ~r and b = Reservoir.Wor.create ~r in
        for i = 1 to 5 do
          Reservoir.Wor.feed rng a i
        done;
        for i = 6 to 10 do
          Reservoir.Wor.feed rng b i
        done;
        let m = Reservoir.Wor.merge rng a b in
        if Array.exists (fun x -> x = 1) (Reservoir.Wor.contents m) then incr hits
      done;
      let phat = float_of_int !hits /. float_of_int trials in
      if p = 1. then
        Alcotest.(check int) "r=n keeps every element" trials !hits
      else begin
        let sigma = sqrt (p *. (1. -. p) /. float_of_int trials) in
        Alcotest.(check bool)
          (Printf.sprintf "membership r=%d: %.4f ~ %.1f" r phat p)
          true
          (Float.abs (phat -. p) < 3.5 *. sigma)
      end)
    (merge_sizes ~n:10 ~r:4)

(* ------------------------------------------------------------------ *)
(* split_n                                                             *)

let test_split_n () =
  let fingerprints seed n =
    let t = Prng.create ~seed () in
    Array.map Prng.state_fingerprint (Prng.split_n t n)
  in
  let a = fingerprints 42 6 and b = fingerprints 42 6 in
  Alcotest.(check bool) "deterministic" true (a = b);
  let distinct = List.sort_uniq compare (Array.to_list a) in
  Alcotest.(check int) "children mutually distinct" 6 (List.length distinct);
  Alcotest.(check int) "n=0 ok" 0 (Array.length (Prng.split_n (Prng.create ()) 0));
  Alcotest.(check bool) "n<0 rejected" true
    (try
       ignore (Prng.split_n (Prng.create ()) (-1));
       false
     with Invalid_argument _ -> true);
  (* Children diverge from the parent's subsequent stream. *)
  let t = Prng.create ~seed:42 () in
  let kids = Prng.split_n t 3 in
  let parent_fp = Prng.state_fingerprint t in
  Array.iter
    (fun k ->
      Alcotest.(check bool) "child detached from parent" true
        (Prng.state_fingerprint k <> parent_fp))
    kids

let suite =
  [
    Alcotest.test_case "every strategy is parallelizable" `Quick test_all_parallelizable;
    Alcotest.test_case "parallel run returns r tuples" `Quick test_parallel_returns_r;
    Alcotest.test_case "parallel output is join tuples" `Quick test_parallel_emits_join_tuples;
    Alcotest.test_case "parallel sample is WR-uniform (chi-square)" `Slow test_parallel_uniform;
    Alcotest.test_case "parallel r = 0" `Quick test_parallel_r_zero;
    Alcotest.test_case "more domains than rows" `Quick test_parallel_more_domains_than_rows;
    Alcotest.test_case "parallel seeded reproducibility" `Quick test_parallel_deterministic;
    Alcotest.test_case "domains = 0 is exactly sequential" `Quick
      test_parallel_domains_zero_is_sequential;
    Alcotest.test_case "parallel WoR basics" `Quick test_parallel_wor_basics;
    Alcotest.test_case "parallel WoR clamps to join size" `Quick
      test_parallel_wor_clamps_to_join_size;
    Alcotest.test_case "parallel WoR seeded reproducibility" `Quick
      test_parallel_wor_deterministic;
    Alcotest.test_case "WoR domains = 0 is exactly sequential" `Quick
      test_parallel_wor_domains_zero_is_sequential;
    Alcotest.test_case "metrics sum across domains" `Quick test_parallel_metrics_sum;
    Alcotest.test_case "scheduler returns results in chunk order" `Quick
      test_scheduler_results_in_order;
    Alcotest.test_case "scheduler rejects bad arguments" `Quick test_scheduler_rejects_bad_args;
    Alcotest.test_case "scheduler default chunk size" `Quick test_scheduler_default_chunk_size;
    Alcotest.test_case "explicit chunk sizes stay deterministic" `Quick
      test_explicit_chunk_size_same_sample;
    Alcotest.test_case "Wr.merge conserves mass" `Quick test_wr_merge_mass_conservation;
    Alcotest.test_case "Wr.merge with an empty shard" `Quick test_wr_merge_empty_side;
    Alcotest.test_case "Wr.merge at r = 0" `Quick test_wr_merge_r_zero;
    Alcotest.test_case "Wr.merge rejects mismatched r" `Quick test_wr_merge_mismatched_r;
    Alcotest.test_case "Wr.merge slot law" `Slow test_wr_merge_slot_law;
    Alcotest.test_case "Unit.merge fed-weighted coin" `Quick test_unit_merge;
    Alcotest.test_case "Wor.merge invariants" `Quick test_wor_merge_invariants;
    Alcotest.test_case "Wor.merge membership law" `Slow test_wor_merge_membership_law;
    Alcotest.test_case "Prng.split_n determinism" `Quick test_split_n;
  ]

open Rsj_relation
module Join_estimate = Rsj_stats.Join_estimate
module Frequency = Rsj_stats.Frequency
module Histogram = Rsj_stats.Histogram
module Zipf_tables = Rsj_workload.Zipf_tables

let instance ~z1 ~z2 =
  let pair = Zipf_tables.make_pair ~seed:0x1E ~n1:1_500 ~n2:6_000 ~z1 ~z2 ~domain:150 () in
  let truth =
    Frequency.join_size
      (Frequency.of_relation pair.outer ~key:Zipf_tables.col2)
      (Frequency.of_relation pair.inner ~key:Zipf_tables.col2)
  in
  (pair, float_of_int truth)

let within_sigmas ~sigmas (est : Join_estimate.estimate) truth =
  Float.abs (est.value -. truth) <= (sigmas *. est.stderr) +. (0.02 *. truth)

let test_cross_product () =
  let pair, truth = instance ~z1:0. ~z2:1. in
  let rng = Rsj_util.Prng.create ~seed:1 () in
  let est =
    Join_estimate.cross_product rng ~left:pair.outer ~right:pair.inner
      ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ~r1:800 ~r2:800
  in
  Alcotest.(check int) "draw accounting" 1_600 est.draws;
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f ± %.0f vs truth %.0f" est.value est.stderr truth)
    true
    (within_sigmas ~sigmas:4. est truth)

let test_index_assisted () =
  let pair, truth = instance ~z1:1. ~z2:2. in
  let idx = Rsj_index.Hash_index.build pair.inner ~key:Zipf_tables.col2 in
  let rng = Rsj_util.Prng.create ~seed:2 () in
  let est =
    Join_estimate.index_assisted rng ~left:pair.outer ~right_index:idx
      ~left_key:Zipf_tables.col2 ~draws:1_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f ± %.0f vs truth %.0f" est.value est.stderr truth)
    true
    (within_sigmas ~sigmas:4. est truth)

let test_bifocal () =
  let pair, truth = instance ~z1:1. ~z2:2. in
  let stats = Frequency.of_relation pair.inner ~key:Zipf_tables.col2 in
  let histogram = Histogram.End_biased.build_fraction stats ~fraction:0.02 in
  let rng = Rsj_util.Prng.create ~seed:3 () in
  let est =
    Join_estimate.bifocal rng ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
      ~right_key:Zipf_tables.col2 ~histogram ~draws:1_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f ± %.0f vs truth %.0f" est.value est.stderr truth)
    true
    (within_sigmas ~sigmas:4. est truth)

let test_bifocal_beats_index_assisted_variance_under_skew () =
  (* The hot values are counted exactly, so bifocal's stderr should be
     well below index-assisted's on skewed data at equal draws. *)
  let pair, _ = instance ~z1:2. ~z2:3. in
  let idx = Rsj_index.Hash_index.build pair.inner ~key:Zipf_tables.col2 in
  let stats = Frequency.of_relation pair.inner ~key:Zipf_tables.col2 in
  let histogram = Histogram.End_biased.build_fraction stats ~fraction:0.02 in
  let rng = Rsj_util.Prng.create ~seed:4 () in
  let ia =
    Join_estimate.index_assisted rng ~left:pair.outer ~right_index:idx
      ~left_key:Zipf_tables.col2 ~draws:400
  in
  let bf =
    Join_estimate.bifocal rng ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
      ~right_key:Zipf_tables.col2 ~histogram ~draws:400
  in
  Alcotest.(check bool)
    (Printf.sprintf "bifocal stderr %.0f << index-assisted %.0f" bf.stderr ia.stderr)
    true
    (bf.stderr < ia.stderr /. 4.)

let test_empty_inputs () =
  let schema = Zipf_tables.schema in
  let empty = Relation.create ~name:"empty" schema in
  let nonempty =
    Relation.of_tuples ~name:"ne" schema [ [| Value.Int 1; Value.Int 1; Value.str "p" |] ]
  in
  let rng = Rsj_util.Prng.create () in
  let est =
    Join_estimate.cross_product rng ~left:empty ~right:nonempty ~left_key:1 ~right_key:1
      ~r1:10 ~r2:10
  in
  Alcotest.(check (float 0.)) "empty left" 0. est.value;
  let idx = Rsj_index.Hash_index.build nonempty ~key:1 in
  let est2 = Join_estimate.index_assisted rng ~left:empty ~right_index:idx ~left_key:1 ~draws:5 in
  Alcotest.(check (float 0.)) "empty left (index)" 0. est2.value;
  Alcotest.(check bool) "bad draws" true
    (try
       ignore (Join_estimate.index_assisted rng ~left:nonempty ~right_index:idx ~left_key:1 ~draws:0);
       false
     with Invalid_argument _ -> true)

let test_disjoint_join_estimates_zero () =
  let schema = Zipf_tables.schema in
  let mk name v =
    Relation.of_tuples ~name schema
      (List.init 50 (fun i -> [| Value.Int i; Value.Int v; Value.str "p" |]))
  in
  let rng = Rsj_util.Prng.create ~seed:5 () in
  let est =
    Join_estimate.cross_product rng ~left:(mk "a" 1) ~right:(mk "b" 2) ~left_key:1 ~right_key:1
      ~r1:50 ~r2:50
  in
  Alcotest.(check (float 0.)) "no matches" 0. est.value

let test_all_null_keys () =
  (* SQL semantics: NULL joins nothing, so a join over all-null keys
     is empty and every estimator must say 0 — not crash, not count
     null-null "matches". *)
  let schema = Zipf_tables.schema in
  let nulls name =
    Relation.of_tuples ~name schema
      (List.init 30 (fun i -> [| Value.Int i; Value.Null; Value.str "p" |]))
  in
  let left = nulls "ln" and right = nulls "rn" in
  let rng = Rsj_util.Prng.create ~seed:6 () in
  let est =
    Join_estimate.cross_product rng ~left ~right ~left_key:1 ~right_key:1 ~r1:40 ~r2:40
  in
  Alcotest.(check (float 0.)) "cross-product value" 0. est.value;
  Alcotest.(check (float 0.)) "cross-product stderr" 0. est.stderr;
  let idx = Rsj_index.Hash_index.build right ~key:1 in
  let est2 = Join_estimate.index_assisted rng ~left ~right_index:idx ~left_key:1 ~draws:40 in
  Alcotest.(check (float 0.)) "index-assisted value" 0. est2.value;
  let stats = Frequency.of_relation right ~key:1 in
  Alcotest.(check int) "null keys carry no statistics" 0 (Frequency.total stats);
  let histogram = Histogram.End_biased.build_fraction stats ~fraction:0.05 in
  let est3 =
    Join_estimate.bifocal rng ~left ~right ~left_key:1 ~right_key:1 ~histogram ~draws:40
  in
  Alcotest.(check (float 0.)) "bifocal value" 0. est3.value

let test_bifocal_zero_high_histogram () =
  (* Uniform data can leave the end-biased histogram tracking nothing
     (no value crosses the threshold). Bifocal then degenerates to
     pure cold-side sampling and must still converge on the truth. *)
  let pair, truth = instance ~z1:0. ~z2:0. in
  let stats = Frequency.of_relation pair.inner ~key:Zipf_tables.col2 in
  let histogram = Histogram.End_biased.build_fraction stats ~fraction:0.05 in
  Alcotest.(check int) "histogram tracks nothing" 0
    (Histogram.End_biased.tracked_count histogram);
  let rng = Rsj_util.Prng.create ~seed:7 () in
  let est =
    Join_estimate.bifocal rng ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
      ~right_key:Zipf_tables.col2 ~histogram ~draws:1_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f ± %.0f vs truth %.0f" est.value est.stderr truth)
    true
    (within_sigmas ~sigmas:4. est truth)

let test_boxed_int_plane_agreement () =
  (* The estimators read keys through Tuple.attr; the data plane's
     global mode (boxed values vs flat int columns) must not change a
     single bit of the estimate at equal seeds. *)
  let pair, _ = instance ~z1:1. ~z2:2. in
  let run_in mode =
    let saved = Rsj_relation.Column.mode () in
    Rsj_relation.Column.set_mode mode;
    Fun.protect
      ~finally:(fun () -> Rsj_relation.Column.set_mode saved)
      (fun () ->
        let rng = Rsj_util.Prng.create ~seed:8 () in
        let idx = Rsj_index.Hash_index.build pair.inner ~key:Zipf_tables.col2 in
        let ia =
          Join_estimate.index_assisted rng ~left:pair.outer ~right_index:idx
            ~left_key:Zipf_tables.col2 ~draws:300
        in
        let cp =
          Join_estimate.cross_product rng ~left:pair.outer ~right:pair.inner
            ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ~r1:300 ~r2:300
        in
        (ia, cp))
  in
  let ia_boxed, cp_boxed = run_in Rsj_relation.Column.Boxed in
  let ia_int, cp_int = run_in Rsj_relation.Column.Int_keys in
  Alcotest.(check (float 0.)) "index-assisted value agrees" ia_boxed.value ia_int.value;
  Alcotest.(check (float 0.)) "index-assisted stderr agrees" ia_boxed.stderr ia_int.stderr;
  Alcotest.(check (float 0.)) "cross-product value agrees" cp_boxed.value cp_int.value;
  Alcotest.(check (float 0.)) "cross-product stderr agrees" cp_boxed.stderr cp_int.stderr

let suite =
  [
    Alcotest.test_case "cross-product estimator" `Quick test_cross_product;
    Alcotest.test_case "index-assisted estimator" `Quick test_index_assisted;
    Alcotest.test_case "bifocal estimator" `Quick test_bifocal;
    Alcotest.test_case "bifocal variance advantage under skew" `Quick
      test_bifocal_beats_index_assisted_variance_under_skew;
    Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
    Alcotest.test_case "disjoint join" `Quick test_disjoint_join_estimates_zero;
    Alcotest.test_case "all-null join keys" `Quick test_all_null_keys;
    Alcotest.test_case "zero-high-frequency histogram" `Quick test_bifocal_zero_high_histogram;
    Alcotest.test_case "boxed vs int-plane agreement" `Quick test_boxed_int_plane_agreement;
  ]

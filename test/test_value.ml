open Rsj_relation

let v = Alcotest.testable Value.pp Value.equal

let test_equality () =
  Alcotest.(check v) "int eq" (Value.Int 3) (Value.int 3);
  Alcotest.(check bool) "int/float not equal" false (Value.equal (Value.Int 1) (Value.Float 1.));
  Alcotest.(check bool) "null equals null" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "null not equal to 0" false (Value.equal Value.Null (Value.Int 0));
  Alcotest.(check bool) "strings" true (Value.equal (Value.str "a") (Value.Str "a"))

let test_compare_total_order () =
  Alcotest.(check bool) "null smallest" true (Value.compare Value.Null (Value.Int min_int) < 0);
  Alcotest.(check bool) "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "str order" true (Value.compare (Value.str "a") (Value.str "b") < 0);
  Alcotest.(check int) "reflexive" 0 (Value.compare (Value.Float 2.5) (Value.Float 2.5))

let test_compare_numeric_cross_kind () =
  Alcotest.(check int) "1 = 1.0 numerically" 0 (Value.compare (Value.Int 1) (Value.Float 1.));
  Alcotest.(check bool) "2 > 1.5" true (Value.compare (Value.Int 2) (Value.Float 1.5) > 0);
  Alcotest.(check bool) "1.5 < 2" true (Value.compare (Value.Float 1.5) (Value.Int 2) < 0)

let test_hash_consistent_with_equal () =
  let pairs = [ (Value.Int 42, Value.int 42); (Value.str "xy", Value.str "xy"); (Value.Null, Value.Null) ] in
  List.iter
    (fun (a, b) -> Alcotest.(check int) "equal implies same hash" (Value.hash a) (Value.hash b))
    pairs

(* The property the data plane's Vtbl consumers rely on, pinned over
   arbitrary values (including the min_int/max_int extremes the Int
   mixing multiply must survive): equal values hash equally, and the
   Int fast path stays non-negative. *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map Value.int (oneof [ int; return min_int; return max_int; return 0 ]);
        map Value.float float;
        map Value.str (string_size (int_bound 8));
      ])

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal a b implies hash a = hash b" ~count:1000
    (QCheck.pair (QCheck.make value_gen) (QCheck.make value_gen))
    (fun (a, b) ->
      (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_int_hash_non_negative =
  QCheck.Test.make ~name:"int hash is non-negative" ~count:1000
    QCheck.(oneof [ int; make (Gen.return min_int); make (Gen.return max_int) ])
    (fun x -> Value.hash (Value.Int x) >= 0)

let test_conversions () =
  Alcotest.(check int) "to_int" 5 (Value.to_int_exn (Value.Int 5));
  Alcotest.(check (float 0.)) "int widens to float" 5. (Value.to_float_exn (Value.Int 5));
  Alcotest.(check (float 0.)) "float to float" 2.5 (Value.to_float_exn (Value.Float 2.5));
  Alcotest.(check string) "to_str" "hi" (Value.to_str_exn (Value.str "hi"));
  Alcotest.(check bool) "to_int of str raises" true
    (try
       ignore (Value.to_int_exn (Value.str "x"));
       false
     with Invalid_argument _ -> true)

let test_conforms () =
  Alcotest.(check bool) "int conforms" true (Value.conforms (Value.Int 1) Value.T_int);
  Alcotest.(check bool) "null conforms to anything" true (Value.conforms Value.Null Value.T_str);
  Alcotest.(check bool) "str does not conform to int" false
    (Value.conforms (Value.str "x") Value.T_int)

let test_printing () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "int" "7" (Value.to_string (Value.Int 7));
  Alcotest.(check string) "string quoted" "\"a\"" (Value.to_string (Value.str "a"))

let test_ty_of () =
  Alcotest.(check bool) "null has no type" true (Value.ty_of Value.Null = None);
  Alcotest.(check bool) "int type" true (Value.ty_of (Value.Int 1) = Some Value.T_int)

let suite =
  [
    Alcotest.test_case "equality semantics" `Quick test_equality;
    Alcotest.test_case "total order" `Quick test_compare_total_order;
    Alcotest.test_case "numeric cross-kind comparison" `Quick test_compare_numeric_cross_kind;
    Alcotest.test_case "hash consistent with equal" `Quick test_hash_consistent_with_equal;
    QCheck_alcotest.to_alcotest prop_hash_consistent;
    QCheck_alcotest.to_alcotest prop_int_hash_non_negative;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "type conformance" `Quick test_conforms;
    Alcotest.test_case "printing" `Quick test_printing;
    Alcotest.test_case "ty_of" `Quick test_ty_of;
  ]

(* rsj — command-line front end for the join-sampling library.

   Subcommands:
     generate    write a Zipfian table (paper §8.1) to CSV
     sample      sample a join of two CSV tables with a chosen strategy
     query       run a SQL query with an optional SAMPLE clause
     experiment  run one of the paper's figures/tables or everything
     validate    run the analytic validations (alphas, uniformity,
                 negative results)
     verify      statistical conformance sweep against the exact
                 join-distribution oracle
     trace       run one strategy with span tracing on and write a
                 Chrome Trace Event JSON (Perfetto / chrome://tracing)
     metrics     run the strategies with telemetry on and print the
                 counter/histogram registry (Prometheus text or JSON)
     explain     show the strategy requirement table (Table 1) *)

open Cmdliner
module Zipf_tables = Rsj_workload.Zipf_tables
module Strategy = Rsj_core.Strategy
module Experiments = Rsj_harness.Experiments
module Obs = Rsj_obs

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let seed_arg =
  let doc = "PRNG seed (all commands are reproducible from it)." in
  Arg.(value & opt int 0x5EED & info [ "seed" ] ~docv:"SEED" ~doc)

let trace_arg =
  let doc =
    "Record the run as Chrome Trace Event JSON in $(docv), openable in Perfetto \
     (ui.perfetto.dev) or chrome://tracing. Equivalent to running under \
     $(b,RSJ_TRACE)=$(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* The --trace flag and the RSJ_TRACE variable resolve to one
   destination; the flag wins. *)
let trace_dest cli = match cli with Some _ -> cli | None -> Obs.env_trace_path ()

let report_trace path =
  let events = List.length (Obs.Trace.events ()) in
  let dropped = Obs.Trace.dropped () in
  Obs.Trace.write_file path;
  Printf.eprintf "# trace: %d events%s -> %s\n" events
    (if dropped > 0 then Printf.sprintf " (+%d dropped by ring overflow)" dropped else "")
    path

let with_tracing dest f =
  match dest with
  | None -> f ()
  | Some path ->
      Obs.set_enabled true;
      Obs.Trace.clear ();
      Fun.protect f ~finally:(fun () -> report_trace path)

(* ------------------------------------------------------------------ *)
(* --domains resolution. Defaults are each command's preference
   clamped to Domain.recommended_domain_count (): oversubscribing
   domains is pure scheduling overhead users should not pay by default
   (on a 1-core box, Naive WoR at d4 measures ~6x slower than d1 —
   BENCH_parallel.json). An explicit --domains, or the RSJ_DOMAINS
   environment variable, is honored as given, with a stderr warning
   when it exceeds the recommendation. *)

let resolve_domains ~preferred explicit =
  let recommended = Rsj_parallel.default_domains () in
  let explicit =
    match explicit with
    | Some _ -> explicit
    | None -> Option.bind (Sys.getenv_opt "RSJ_DOMAINS") (fun s -> int_of_string_opt (String.trim s))
  in
  match explicit with
  | Some n ->
      if n > recommended then
        Printf.eprintf
          "# warning: %d domains requested but this machine recommends %d; the extra \
           domains add scheduling overhead without parallel speedup\n"
          n recommended;
      n
  | None -> max 1 (min preferred recommended)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)

let generate_cmd =
  let rows =
    Arg.(value & opt int 10_000 & info [ "rows"; "n" ] ~docv:"N" ~doc:"Number of tuples.")
  in
  let z = Arg.(value & opt float 1. & info [ "z" ] ~docv:"Z" ~doc:"Zipf parameter (0 = uniform).") in
  let domain =
    Arg.(value & opt int 1_000 & info [ "domain" ] ~docv:"D" ~doc:"Distinct join values.")
  in
  let out =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.csv" ~doc:"Output path.")
  in
  let run rows z domain seed out =
    if rows <= 0 then `Error (false, "--rows must be positive")
    else if domain <= 0 then `Error (false, "--domain must be positive")
    else if z < 0. then `Error (false, "--z must be non-negative")
    else begin
      let rel =
        Zipf_tables.make ~seed ~name:(Filename.basename out) ~rows ~z ~domain ()
      in
      Rsj_relation.Csv_io.save ~path:out rel;
      Printf.printf "wrote %d rows (z=%g, domain=%d, seed=%#x) to %s\n" rows z domain seed out;
      `Ok ()
    end
  in
  let info =
    Cmd.info "generate" ~doc:"Generate a Zipfian experiment table (paper \xc2\xa78.1) as CSV."
  in
  Cmd.v info Term.(ret (const run $ rows $ z $ domain $ seed_arg $ out))

(* ------------------------------------------------------------------ *)
(* sample                                                              *)

let strategy_conv =
  let parse s =
    match Strategy.of_name s with
    | Some st -> Ok st
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown strategy %S (try: %s)" s
               (String.concat ", " (List.map Strategy.name Strategy.all))))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Strategy.name s))

let sample_cmd =
  let left =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LEFT.csv" ~doc:"Outer relation R1.")
  in
  let right =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"RIGHT.csv" ~doc:"Inner relation R2.")
  in
  let strategy =
    Arg.(
      value
      & opt (some strategy_conv) None
      & info [ "strategy"; "s" ] ~docv:"STRATEGY"
          ~doc:
            "Sampling strategy. When omitted the cost-based picker chooses one from the \
             paper's cost formulas (see --explain).")
  in
  let explain =
    Arg.(
      value
      & flag
      & info [ "explain" ]
          ~doc:
            "Print the picker's decision trace (per-strategy costs and feasibility) and a \
             per-query error report (CLT and Hoeffding confidence intervals for \
             SUM/COUNT/AVG over col_rid) on stderr.")
  in
  let r = Arg.(value & opt int 10 & info [ "r" ] ~docv:"R" ~doc:"Sample size (WR semantics).") in
  let wor =
    Arg.(value & flag & info [ "without-replacement" ] ~doc:"Convert to WoR semantics (\xc2\xa73).")
  in
  let show_metrics = Arg.(value & flag & info [ "metrics" ] ~doc:"Print the work counters.") in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~docv:"N"
          ~doc:
            "Execute across N OCaml domains (default: 1, clamped to this machine's \
             recommended domain count; RSJ_DOMAINS overrides). All eight strategies run on \
             the pooled chunk-scheduled runtime, with or without --without-replacement; for \
             a fixed --seed the sample is identical at every N (except Olken at N > 1, \
             whose speculative rounds are timing-dependent).")
  in
  let run left right strategy explain r wor show_metrics domains seed trace =
    let domains = resolve_domains ~preferred:1 domains in
    if r < 0 then `Error (false, "--r must be non-negative")
    else if domains < 1 then `Error (false, "--domains must be at least 1")
    else begin
      try
        with_tracing (trace_dest trace) @@ fun () ->
        let l = Rsj_relation.Csv_io.load ~path:left Zipf_tables.schema in
        let rt = Rsj_relation.Csv_io.load ~path:right Zipf_tables.schema in
        let env =
          Strategy.make_env ~seed ~left:l ~right:rt ~left_key:Zipf_tables.col2
            ~right_key:Zipf_tables.col2 ()
        in
        let strategy, decision =
          match strategy with
          | Some s -> (s, None)
          | None ->
              let catalog =
                Rsj_optimizer.Catalog.of_env ~availability:Strategy.all_available env
              in
              let s, d =
                Rsj_optimizer.Picker.choose_counted catalog
                  (Rsj_optimizer.Cost_model.shape ~r)
              in
              (s, Some d)
        in
        let result =
          if wor then Rsj_parallel.run_wor env strategy ~r ~domains
          else Rsj_parallel.run env strategy ~r ~domains
        in
        (match decision with
        | Some d when explain -> prerr_string (Rsj_optimizer.Picker.to_string d)
        | Some d ->
            Printf.eprintf "# picker: %s (%s)\n"
              (Strategy.name d.Rsj_optimizer.Picker.chosen)
              (Rsj_optimizer.Picker.reason_to_string d.Rsj_optimizer.Picker.reason)
        | None -> ());
        Array.iter
          (fun t -> print_endline (Rsj_relation.Tuple.to_string t))
          result.Strategy.sample;
        Printf.eprintf "# %s: %d tuples in %.4fs (join size %d)\n" (Strategy.name strategy)
          (Array.length result.Strategy.sample)
          result.Strategy.elapsed_seconds (Strategy.env_join_size env);
        if explain && Array.length result.Strategy.sample > 0 then
          prerr_string
            (Rsj_optimizer.Error_report.to_string
               (Rsj_optimizer.Error_report.make ~sample:result.Strategy.sample
                  ~n:(Strategy.env_join_size env) ~col:Zipf_tables.col_rid ()));
        if show_metrics then
          Format.eprintf "%a@." Rsj_exec.Metrics.pp result.Strategy.metrics;
        `Ok ()
      with
      | Failure msg -> `Error (false, msg)
      | Invalid_argument msg -> `Error (false, msg)
    end
  in
  let info =
    Cmd.info "sample"
      ~doc:
        "Sample the equi-join of two CSV tables (on col2) without computing the full join."
  in
  Cmd.v
    info
    Term.(
      ret
        (const run $ left $ right $ strategy $ explain $ r $ wor $ show_metrics $ domains
       $ seed_arg $ trace_arg))

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)

let experiment_cmd =
  let which =
    let doc = "Which experiment: table1, A, B, C, D, E, F, or all." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"WHICH" ~doc)
  in
  let run which =
    let cfg = Experiments.config_from_env () in
    let ppf = Format.std_formatter in
    match String.lowercase_ascii which with
    | "all" ->
        Experiments.run_all ppf;
        `Ok ()
    | "table1" ->
        Rsj_harness.Report.render ppf (Experiments.table1 ());
        `Ok ()
    | "a" -> Experiments.render_figure ppf (Experiments.figure_a cfg); `Ok ()
    | "b" -> Experiments.render_figure ppf (Experiments.figure_b cfg); `Ok ()
    | "c" -> Experiments.render_figure ppf (Experiments.figure_c cfg); `Ok ()
    | "d" -> Experiments.render_figure ppf (Experiments.figure_d cfg); `Ok ()
    | "e" -> Experiments.render_figure ppf (Experiments.figure_e cfg); `Ok ()
    | "f" -> Experiments.render_figure ppf (Experiments.figure_f cfg); `Ok ()
    | other -> `Error (false, Printf.sprintf "unknown experiment %S" other)
  in
  let info =
    Cmd.info "experiment"
      ~doc:
        "Re-run the paper's evaluation (Table 1, Figures A-F). Scale via RSJ_N1/RSJ_N2/\
         RSJ_DOMAIN/RSJ_SCALE/RSJ_REPS."
  in
  Cmd.v info Term.(ret (const run $ which))

(* ------------------------------------------------------------------ *)
(* validate                                                            *)

let validate_cmd =
  let run () =
    let cfg = Experiments.config_from_env () in
    let ppf = Format.std_formatter in
    Rsj_harness.Report.render ppf (Experiments.validate_alphas cfg);
    Rsj_harness.Report.render ppf (Experiments.validate_uniformity ());
    Rsj_harness.Report.render ppf (Experiments.negative_demo ());
    `Ok ()
  in
  let info =
    Cmd.info "validate"
      ~doc:
        "Validate the analytic results: Theorems 5/7/8/9 cost formulas, chi-square \
         uniformity of every strategy, and the \xc2\xa77 negative results."
  in
  Cmd.v info Term.(ret (const run $ const ()))

(* ------------------------------------------------------------------ *)
(* query                                                               *)

let query_cmd =
  let tables =
    let doc = "Bind a table: NAME=PATH.csv (repeatable). Tables use the \xc2\xa78.1 schema." in
    Arg.(value & opt_all string [] & info [ "table"; "t" ] ~docv:"NAME=PATH" ~doc)
  in
  let sql =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query text.")
  in
  let explain = Arg.(value & flag & info [ "explain" ] ~doc:"Print the plan, not the rows.") in
  let run tables sql explain seed =
    try
      let catalog =
        List.map
          (fun binding ->
            match String.index_opt binding '=' with
            | Some i ->
                let name = String.sub binding 0 i in
                let path = String.sub binding (i + 1) (String.length binding - i - 1) in
                (name, Rsj_relation.Csv_io.load ~path Zipf_tables.schema)
            | None -> failwith (Printf.sprintf "bad --table binding %S (want NAME=PATH)" binding))
          tables
      in
      match Rsj_sql.Engine.run ~seed catalog sql with
      | Error msg -> `Error (false, msg)
      | Ok result ->
          if explain || result.Rsj_sql.Engine.explained then begin
            Format.printf "%a@." Rsj_exec.Plan.explain result.Rsj_sql.Engine.plan;
            match result.Rsj_sql.Engine.decision with
            | Some d -> print_string (Rsj_optimizer.Picker.to_string d)
            | None -> ()
          end
          else begin
            (match result.Rsj_sql.Engine.decision with
            | Some d ->
                Printf.eprintf "# picker: %s (%s)\n"
                  (Strategy.name d.Rsj_optimizer.Picker.chosen)
                  (Rsj_optimizer.Picker.reason_to_string d.Rsj_optimizer.Picker.reason)
            | None -> ());
            let schema = result.Rsj_sql.Engine.schema in
            let header =
              Array.to_list (Rsj_relation.Schema.columns schema)
              |> List.map (fun (c : Rsj_relation.Schema.column) -> c.name)
              |> String.concat " | "
            in
            print_endline header;
            List.iter
              (fun row -> print_endline (Rsj_relation.Tuple.to_string row))
              result.Rsj_sql.Engine.rows;
            Printf.eprintf "# %d rows, work=%d\n"
              (List.length result.Rsj_sql.Engine.rows)
              (Rsj_exec.Metrics.total_work result.Rsj_sql.Engine.metrics)
          end;
          `Ok ()
    with Failure msg -> `Error (false, msg)
  in
  let info =
    Cmd.info "query"
      ~doc:
        "Run a SQL query with optional SAMPLE clause, e.g. 'select * from t1, t2 where \
         t1.col2 = t2.col2 sample 10 using stream'."
  in
  Cmd.v info Term.(ret (const run $ tables $ sql $ explain $ seed_arg))

(* ------------------------------------------------------------------ *)
(* verify                                                              *)

let verify_cmd =
  let trials =
    Arg.(
      value
      & opt (some int) None
      & info [ "trials" ] ~docv:"T"
          ~doc:
            "Samples pooled per conformance cell (default 60, or \\$(b,RSJ_CONF_TRIALS)). \
             Higher = more statistical power, longer runtime.")
  in
  let r = Arg.(value & opt int 16 & info [ "r" ] ~docv:"R" ~doc:"Sample size per trial.") in
  let alpha =
    Arg.(
      value
      & opt float 0.01
      & info [ "alpha" ] ~docv:"A"
          ~doc:"Family-wise significance; each cell is tested at alpha / #comparisons.")
  in
  let retries =
    Arg.(
      value
      & opt int 2
      & info [ "retries" ] ~docv:"K"
          ~doc:"Extra independently seeded attempts before a cell is declared failed.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit the report as CSV instead of a table.") in
  let run trials r alpha retries csv seed trace =
    if r <= 0 then `Error (false, "--r must be positive")
    else if alpha <= 0. || alpha >= 1. then `Error (false, "--alpha must be in (0,1)")
    else if retries < 0 then `Error (false, "--retries must be non-negative")
    else begin
      try
        with_tracing (trace_dest trace) @@ fun () ->
        let base = Rsj_verify.Conformance.default_config () in
        let config =
          {
            base with
            Rsj_verify.Conformance.trials = Option.value trials ~default:base.trials;
            r;
            significance = alpha;
            retries;
            seed;
          }
        in
        if Option.value trials ~default:1 <= 0 then failwith "--trials must be positive";
        let summary = Rsj_verify.Conformance.run ~config () in
        let report = Rsj_verify.Conformance.report summary in
        if csv then print_string (Rsj_harness.Report.to_csv report)
        else Rsj_harness.Report.print report;
        if summary.Rsj_verify.Conformance.all_pass then begin
          Printf.printf "conformance: all %d comparisons pass; negative control rejected\n"
            summary.Rsj_verify.Conformance.comparisons;
          (* The pool's spawn accounting now lives in the metric
             registry — export it from there (the one counter-export
             path) rather than re-formatting by hand. *)
          print_string
            (Obs.Registry.to_prometheus
               ~only:(fun name -> String.starts_with ~prefix:"rsj_pool_" name)
               ());
          `Ok ()
        end
        else `Error (false, "conformance failures (see report)")
      with
      | Failure msg -> `Error (false, msg)
      | Invalid_argument msg -> `Error (false, msg)
    end
  in
  let info =
    Cmd.info "verify"
      ~doc:
        "Statistical conformance sweep: every strategy \xc3\x97 semantics (WR/WoR/CF) \xc3\x97 \
         skew \xc3\x97 domains {1,2,4} against the exact join-distribution oracle, plus \
         aggregate-estimate KS tests per strategy \xc3\x97 estimator \xc3\x97 domain count and a \
         biased negative control."
  in
  Cmd.v info Term.(ret (const run $ trials $ r $ alpha $ retries $ csv $ seed_arg $ trace_arg))

(* ------------------------------------------------------------------ *)
(* trace / metrics                                                     *)

(* Synthetic §8.1 workload shared by the two telemetry commands. *)
let workload_args =
  let n1 = Arg.(value & opt int 2_000 & info [ "n1" ] ~docv:"N1" ~doc:"Outer table rows.") in
  let n2 = Arg.(value & opt int 8_000 & info [ "n2" ] ~docv:"N2" ~doc:"Inner table rows.") in
  let z1 = Arg.(value & opt float 1. & info [ "z1" ] ~docv:"Z1" ~doc:"Outer Zipf parameter.") in
  let z2 = Arg.(value & opt float 1. & info [ "z2" ] ~docv:"Z2" ~doc:"Inner Zipf parameter.") in
  let domain =
    Arg.(value & opt int 400 & info [ "domain" ] ~docv:"D" ~doc:"Distinct join values.")
  in
  Term.(const (fun n1 n2 z1 z2 domain -> (n1, n2, z1, z2, domain)) $ n1 $ n2 $ z1 $ z2 $ domain)

let make_workload ~seed (n1, n2, z1, z2, domain) =
  if n1 <= 0 || n2 <= 0 then failwith "--n1/--n2 must be positive"
  else if domain <= 0 then failwith "--domain must be positive"
  else if z1 < 0. || z2 < 0. then failwith "--z1/--z2 must be non-negative"
  else Zipf_tables.make_pair ~seed ~n1 ~n2 ~z1 ~z2 ~domain ()

let run_strategy ~seed ~wor ~r ~domains pair strategy =
  let env =
    Strategy.make_env ~seed ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner
      ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()
  in
  if wor then Rsj_parallel.run_wor env strategy ~r ~domains
  else Rsj_parallel.run env strategy ~r ~domains

let trace_cmd =
  let strategy =
    Arg.(
      required
      & pos 0 (some strategy_conv) None
      & info [] ~docv:"STRATEGY" ~doc:"Strategy to trace.")
  in
  let out =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the Chrome Trace Event JSON.")
  in
  let r = Arg.(value & opt int 256 & info [ "r" ] ~docv:"R" ~doc:"Sample size.") in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "OCaml domains to run across (default: 4, clamped to this machine's \
             recommended domain count; RSJ_DOMAINS overrides).")
  in
  let wor =
    Arg.(value & flag & info [ "without-replacement" ] ~doc:"Trace the WoR path instead of WR.")
  in
  let run strategy out r domains wor workload seed =
    let domains = resolve_domains ~preferred:4 domains in
    if r < 0 then `Error (false, "--r must be non-negative")
    else if domains < 1 then `Error (false, "--domains must be at least 1")
    else begin
      try
        let pair = make_workload ~seed workload in
        Obs.set_enabled true;
        Obs.Trace.clear ();
        let result = run_strategy ~seed ~wor ~r ~domains pair strategy in
        report_trace out;
        Printf.printf
          "%s: traced %d-tuple %s sample over %d domains (join size %d, %.4fs) -> %s\n"
          (Strategy.name strategy)
          (Array.length result.Strategy.sample)
          (if wor then "WoR" else "WR")
          domains (Zipf_tables.join_size pair) result.Strategy.elapsed_seconds out;
        `Ok ()
      with
      | Failure msg -> `Error (false, msg)
      | Invalid_argument msg -> `Error (false, msg)
    end
  in
  let info =
    Cmd.info "trace"
      ~doc:
        "Run one strategy on a synthetic \xc2\xa78.1 workload with span tracing on and write \
         the Chrome Trace Event JSON: pool spawn/park/job spans, per-chunk scheduler spans \
         tagged by domain (skew evidence), and the strategy span. Open the file in Perfetto \
         (ui.perfetto.dev) or chrome://tracing."
  in
  Cmd.v info Term.(ret (const run $ strategy $ out $ r $ domains $ wor $ workload_args $ seed_arg))

let metrics_cmd =
  let r = Arg.(value & opt int 64 & info [ "r" ] ~docv:"R" ~doc:"Sample size per strategy.") in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "OCaml domains to run across (default: 2, clamped to this machine's \
             recommended domain count; RSJ_DOMAINS overrides).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON (with p50/p99) instead of Prometheus text.")
  in
  let watch =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECONDS"
          ~doc:
            "Polling mode: re-render the snapshot in place every SECONDS (local registry, or \
             a live daemon's with $(b,--socket)). Ctrl-C to stop.")
  in
  let watch_count =
    Arg.(
      value
      & opt int 0
      & info [ "watch-count" ] ~docv:"N"
          ~doc:"With $(b,--watch): stop after N refreshes (0 = run until interrupted).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"ADDR"
          ~doc:
            "Scrape a running rsj serve daemon's registry over its socket instead of running \
             the local workload.")
  in
  let run r domains json watch watch_count socket workload seed =
    let domains = resolve_domains ~preferred:2 domains in
    if r < 0 then `Error (false, "--r must be non-negative")
    else if domains < 1 then `Error (false, "--domains must be at least 1")
    else begin
      try
        let snapshot =
          match socket with
          | Some s -> (
              let addr =
                match Rsj_server.Server.addr_of_string s with
                | Ok a -> a
                | Error e -> failwith e
              in
              fun () ->
                let client = Rsj_server.Client.connect addr in
                Fun.protect ~finally:(fun () -> Rsj_server.Client.close client) @@ fun () ->
                match Rsj_server.Client.metrics client with
                | Ok text -> text
                | Error e -> failwith ("metrics rpc failed: " ^ e))
          | None ->
              let pair = make_workload ~seed workload in
              Obs.set_enabled true;
              fun () ->
                List.iter
                  (fun strategy ->
                    ignore (run_strategy ~seed ~wor:false ~r ~domains pair strategy))
                  Strategy.all;
                if json then Obs.Json.to_string (Obs.Registry.to_json ()) ^ "\n"
                else Obs.Registry.to_prometheus ()
        in
        (match watch with
        | None -> print_string (snapshot ())
        | Some period ->
            let period = Float.max 0.05 period in
            let k = ref 0 in
            let continue () = watch_count <= 0 || !k < watch_count in
            while continue () do
              incr k;
              (* Clear screen + home, like watch(1). *)
              print_string "\027[2J\027[H";
              print_string (snapshot ());
              Printf.printf "# refresh %d, every %gs\n%!" !k period;
              if continue () then Unix.sleepf period
            done);
        `Ok ()
      with
      | Failure msg -> `Error (false, msg)
      | Invalid_argument msg -> `Error (false, msg)
    end
  in
  let info =
    Cmd.info "metrics"
      ~doc:
        "Run all eight strategies on a synthetic \xc2\xa78.1 workload with telemetry on and \
         print the metric registry: pool/chunk/strategy counters and histograms, in \
         Prometheus text exposition format (or JSON with $(b,--json)). With $(b,--watch), \
         re-render in place; with $(b,--socket), scrape a live daemon instead."
  in
  Cmd.v info
    Term.(ret (const run $ r $ domains $ json $ watch $ watch_count $ socket $ workload_args $ seed_arg))

(* ------------------------------------------------------------------ *)
(* logs                                                                *)

let logs_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"NDJSON request log written by the daemon (RSJ_LOG).")
  in
  let tail =
    Arg.(
      value
      & opt (some int) None
      & info [ "tail" ] ~docv:"N" ~doc:"Only pretty-print the last N log lines.")
  in
  let pretty line =
    match Obs.Json.parse line with
    | Error _ -> Printf.printf "?? %s\n" line
    | Ok j ->
        let str k = match Obs.Json.member k j with Some (Obs.Json.Str s) -> Some s | _ -> None in
        let num k =
          match Obs.Json.member k j with
          | Some (Obs.Json.Float f) -> Some f
          | Some (Obs.Json.Int i) -> Some (float_of_int i)
          | _ -> None
        in
        let field name render = function Some v -> " " ^ name ^ "=" ^ render v | None -> "" in
        Printf.printf "%s %s %s%s%s%s%s%s%s%s\n"
          (match num "ts" with Some t -> Printf.sprintf "%.3f" t | None -> "-")
          (Option.value (str "req") ~default:"-")
          (Option.value (str "op") ~default:"-")
          (field "strategy" Fun.id (str "strategy"))
          (field "picker" Fun.id (str "picker_reason"))
          (field "cache" Fun.id (str "cache"))
          (field "deadline" Fun.id (str "deadline"))
          (field "status" Fun.id (str "status"))
          (field "latency_ms" (fun v -> Printf.sprintf "%.2f" (v *. 1000.)) (num "latency_s"))
          (field "alloc_words" (fun v -> Printf.sprintf "%.0f" v) (num "alloc_words"));
        match str "sql" with Some q -> Printf.printf "      sql: %s\n" q | None -> ()
  in
  let run file tail =
    if not (Sys.file_exists file) then `Error (false, Printf.sprintf "no such file %S" file)
    else begin
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           let l = input_line ic in
           if String.trim l <> "" then lines := l :: !lines
         done
       with End_of_file -> close_in ic);
      let all = List.rev !lines in
      let shown =
        match tail with
        | Some n when n >= 0 ->
            let len = List.length all in
            List.filteri (fun i _ -> i >= len - n) all
        | _ -> all
      in
      List.iter pretty shown;
      `Ok ()
    end
  in
  let info =
    Cmd.info "logs"
      ~doc:
        "Pretty-print a structured NDJSON request log written by rsj serve with RSJ_LOG set: \
         one line per request with its id, operation, strategy, picker reason, cache \
         outcome, deadline verdict, latency and allocation."
  in
  Cmd.v info Term.(ret (const run $ file $ tail))

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let run () =
    Rsj_harness.Report.print (Experiments.table1 ());
    `Ok ()
  in
  let info = Cmd.info "explain" ~doc:"Show which information each strategy requires (Table 1)." in
  Cmd.v info Term.(ret (const run $ const ()))

(* ------------------------------------------------------------------ *)
(* serve / client / bench-serve                                        *)

module Server = Rsj_server.Server
module Client = Rsj_server.Client

let socket_arg =
  let doc = "Server address: a Unix socket path, or tcp:HOST:PORT." in
  Arg.(value & opt string "/tmp/rsj.sock" & info [ "socket" ] ~docv:"ADDR" ~doc)

let serve_cmd =
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-budget" ] ~docv:"N"
          ~doc:
            "Admission cap on queued sample tuples; requests beyond it fail with a typed \
             'overloaded' error instead of queueing (default 1000000, or \
             $(b,RSJ_SERVE_QUEUE_BUDGET)).")
  in
  let snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Write the final Prometheus metrics snapshot here on shutdown (default stderr, \
             or $(b,RSJ_SERVE_SNAPSHOT)).")
  in
  let run socket budget snapshot =
    match Server.addr_of_string socket with
    | Error e -> `Error (false, e)
    | Ok addr -> (
        try
          let base = Server.default_config addr in
          let config =
            {
              base with
              Server.max_queued_work = Option.value budget ~default:base.Server.max_queued_work;
              snapshot_path =
                (match snapshot with Some _ -> snapshot | None -> base.Server.snapshot_path);
            }
          in
          Printf.eprintf "# rsj serve: listening on %s (queue budget %d)\n%!"
            (Server.addr_to_string addr) config.Server.max_queued_work;
          Server.run config;
          Printf.eprintf "# rsj serve: drained and stopped\n%!";
          `Ok ()
        with Failure msg -> `Error (false, msg))
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Run the sampling daemon: clients register relations once, then sample/query over a \
         newline-delimited JSON socket protocol while auxiliary structures stay warm in the \
         per-relation cache. GET /metrics on the same socket serves Prometheus text. \
         SIGINT/SIGTERM drain gracefully."
  in
  Cmd.v info Term.(ret (const run $ socket_arg $ budget $ snapshot))

let client_cmd =
  let args =
    let doc =
      "Operation and its arguments: ping | register NAME PATH.csv | sample LEFT RIGHT | \
       query SQL | metrics | stats | invalidate NAME | shutdown."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"OP" ~doc)
  in
  let r = Arg.(value & opt int 10 & info [ "r" ] ~docv:"R" ~doc:"Sample size (sample op).") in
  let strategy =
    Arg.(
      value
      & opt (some string) None
      & info [ "strategy"; "s" ] ~docv:"STRATEGY"
          ~doc:"Strategy for the sample op (default: the server's cost-based picker).")
  in
  let wor =
    Arg.(value & flag & info [ "without-replacement" ] ~doc:"WoR semantics for the sample op.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Domains for the sample op (default: 1, clamped to this machine's recommended \
             domain count; RSJ_DOMAINS overrides).")
  in
  let on =
    Arg.(value & opt string "col2" & info [ "on" ] ~docv:"COL" ~doc:"Join column (sample op).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Fail rather than start later than this.")
  in
  let print_reply (reply : Client.reply) =
    List.iter
      (fun row -> print_endline (Rsj_relation.Tuple.to_string (Array.of_list row)))
      reply.Client.rows;
    List.iter
      (fun (k, v) ->
        match v with
        | Obs.Json.Str s when k = "prometheus" || k = "plan" -> print_string s
        | v -> Printf.eprintf "# %s: %s\n" k (Obs.Json.to_string v))
      reply.Client.detail
  in
  let run socket args r strategy wor domains on deadline seed =
    let domains = resolve_domains ~preferred:1 domains in
    match Server.addr_of_string socket with
    | Error e -> `Error (false, e)
    | Ok addr -> (
        try
          let client = Client.connect addr in
          Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
          let reply =
            match args with
            | [ "ping" ] ->
                if Client.ping client then Ok { Client.rows = []; detail = [ ("pong", Obs.Json.Bool true) ] }
                else Error "no pong"
            | [ "register"; name; path ] -> (
                match Client.register_path client ~name ~path with
                | Ok n -> Ok { Client.rows = []; detail = [ ("rows", Obs.Json.Int n) ] }
                | Error e -> Error e)
            | [ "sample"; left; right ] -> (
                match
                  Client.sample client ~left ~right ~r ?strategy ~seed ~wor ~domains ~on
                    ?deadline_ms:deadline ()
                with
                | Ok reply -> Ok reply
                | Error (code, msg) ->
                    Error (Rsj_server.Protocol.error_code_to_string code ^ ": " ^ msg))
            | [ "query"; sql ] -> (
                match Client.query client ~sql ~seed ?deadline_ms:deadline () with
                | Ok reply -> Ok reply
                | Error (code, msg) ->
                    Error (Rsj_server.Protocol.error_code_to_string code ^ ": " ^ msg))
            | [ "metrics" ] -> (
                match Client.metrics client with
                | Ok text -> Ok { Client.rows = []; detail = [ ("prometheus", Obs.Json.Str text) ] }
                | Error e -> Error e)
            | [ "stats" ] -> (
                match Client.cache_stats client with
                | Ok detail -> Ok { Client.rows = []; detail }
                | Error e -> Error e)
            | [ "invalidate"; name ] -> (
                match Client.invalidate client ~name with
                | Ok () -> Ok { Client.rows = []; detail = [] }
                | Error e -> Error e)
            | [ "shutdown" ] -> (
                match Client.shutdown client with
                | Ok () -> Ok { Client.rows = []; detail = [ ("stopping", Obs.Json.Bool true) ] }
                | Error e -> Error e)
            | op :: _ -> Error (Printf.sprintf "unknown or malformed op %S (see --help)" op)
            | [] -> Error "missing op"
          in
          match reply with
          | Ok reply ->
              print_reply reply;
              `Ok ()
          | Error msg -> `Error (false, msg)
        with Failure msg -> `Error (false, msg))
  in
  let info =
    Cmd.info "client"
      ~doc:
        "Talk to a running rsj serve daemon: register tables, draw warm samples, run SQL, \
         read metrics, or shut it down."
  in
  Cmd.v
    info
    Term.(
      ret (const run $ socket_arg $ args $ r $ strategy $ wor $ domains $ on $ deadline $ seed_arg))

let bench_serve_cmd =
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let requests =
    Arg.(value & opt int 25 & info [ "requests" ] ~docv:"N" ~doc:"Warm requests per connection.")
  in
  let r = Arg.(value & opt int 64 & info [ "r" ] ~docv:"R" ~doc:"Sample size per request.") in
  let cold_runs =
    Arg.(value & opt int 5 & info [ "cold-runs" ] ~docv:"N" ~doc:"One-shot subprocess timings.")
  in
  let soak =
    Arg.(
      value
      & opt (some float) None
      & info [ "soak" ] ~docv:"SECONDS"
          ~doc:"Keep the warm load running this long (default 0, or $(b,RSJ_SERVE_SOAK_SECONDS)).")
  in
  let strategy =
    Arg.(
      value
      & opt string "stream"
      & info [ "strategy"; "s" ] ~docv:"STRATEGY" ~doc:"Strategy timed on both sides.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_serve.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let run clients requests r cold_runs soak strategy out seed =
    if clients < 1 then `Error (false, "--clients must be at least 1")
    else if requests < 1 then `Error (false, "--requests must be at least 1")
    else if r < 0 then `Error (false, "--r must be non-negative")
    else if cold_runs < 1 then `Error (false, "--cold-runs must be at least 1")
    else begin
      try
        let report =
          Rsj_server.Bench_serve.run ~clients ~requests_per_client:requests ~r ~cold_runs
            ~strategy ?soak_seconds:soak ~seed ~out ()
        in
        print_endline (Obs.Json.to_string report);
        Printf.eprintf "# wrote %s\n" out;
        `Ok ()
      with Failure msg -> `Error (false, msg)
    end
  in
  let info =
    Cmd.info "bench-serve"
      ~doc:
        "Cold-vs-warm service benchmark: time one-shot rsj sample subprocesses against the \
         same request served warm by a spawned rsj serve daemon over concurrent pipelined \
         connections; report p50/p99 latency, throughput and the speedup to FILE."
  in
  Cmd.v
    info
    Term.(ret (const run $ clients $ requests $ r $ cold_runs $ soak $ strategy $ out $ seed_arg))

let main =
  let doc = "Random sampling over joins (Chaudhuri, Motwani, Narasayya; SIGMOD 1999)" in
  let info = Cmd.info "rsj" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      generate_cmd;
      sample_cmd;
      query_cmd;
      experiment_cmd;
      validate_cmd;
      verify_cmd;
      trace_cmd;
      metrics_cmd;
      logs_cmd;
      explain_cmd;
      serve_cmd;
      client_cmd;
      bench_serve_cmd;
    ]

let () = exit (Cmd.eval main)
